"""The experiment engine: staged, cached, parallel execution.

Every experiment decomposes into the same stage graph per
(workload × compiler-options × scale) cell::

    source ──compile──> assembly ──trace──> (pcs/taken/addrs, output)
                                     │
                                     ├──analysis──> deadness labels
                                     ├──paths────> future-path views
                                     └──timing───> pipeline statistics

Each arrow is a cacheable stage with a content-addressed key (see
``repro.harness.cachedir``): the compile key hashes the generated
source text and the canonical compiler-option key; every downstream
key chains from its parent's key plus the salt of the code that
implements the stage.  Identical inputs therefore always reuse the
artifact, and *any* relevant change — source, options, seed/scale (via
the source text), machine config, or the implementing code itself —
recomputes exactly the invalidated suffix of the graph.

Independent cells fan out across a ``multiprocessing`` pool
(``jobs > 1``) with deterministic result ordering (input order, not
completion order), a per-cell timeout, and supervision: a faulted
pool cell is recomputed serially in the parent with exponential
backoff, repeated pool faults degrade the engine to serial execution
for the rest of the process, and with ``partial`` reporting a cell
that fails every retry is recorded in run metadata instead of
aborting the sweep (see :meth:`Engine.robustness` and
``repro.harness.faults`` for the fault points that exercise all of
this).  ``jobs = 1`` runs plain in-process with no pool at all.
Results are bit-identical between
serial and parallel execution and between cold and hot caches: cache
artifacts are plain ints/bools/strings whose pickle round-trip is
exact, and every reconstruction path rebuilds the same objects the
direct path produces.

The module-level :func:`get_engine` singleton is what the harness
(``runs.py`` / ``experiments.py`` / ``cli.py`` / benchmarks) uses;
tests construct private :class:`Engine` instances around temporary
cache directories.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import kernels, obs
from repro.analysis import DeadnessAnalysis, analyze_deadness
from repro.analysis.statics import StaticTable
from repro.emulator import Trace, run_program
from repro.harness import artifacts, faults
from repro.harness.cachedir import MISS, CacheDir, stable_hash, stage_salt
from repro.kernels.base import (
    DeadnessColumns,
    FusedColumns,
    KillColumns,
    StaticCounts,
)
from repro.isa.assembler import assemble
from repro.lang import CompilerOptions, compile_source
from repro.pipeline import MachineConfig
from repro.pipeline.core import PipelineResult, simulate
from repro.predictors.dead.paths import PathInfo, compute_paths
from repro.workloads import get_workload

__all__ = [
    "CellArtifact",
    "CellSpec",
    "Engine",
    "EngineConfig",
    "configure",
    "get_engine",
    "install",
    "reset_engine",
]

#: The emulator step budget is part of the trace key: raising it can
#: legitimately change a trace that previously hit the limit.
MAX_STEPS = 10_000_000


# ---------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------


@dataclass(frozen=True)
class EngineConfig:
    """How the engine executes: parallelism, caching, robustness."""

    #: worker processes for independent cells; 1 = serial, no pool
    jobs: int = 1
    #: enable the on-disk stage cache
    cache: bool = True
    #: cache root (created on first store)
    cache_dir: str = ".repro-cache"
    #: per-cell wall-clock timeout in pool mode (seconds)
    cell_timeout: float = 600.0
    #: failed/timed-out pool cells are retried serially this many times
    retries: int = 1
    #: base delay for exponential backoff between retry attempts
    #: (attempt *n* sleeps ``retry_backoff * 2**n`` seconds; 0 = none)
    retry_backoff: float = 0.05
    #: after this many pool faults in one engine lifetime the engine
    #: degrades to serial execution for the rest of the process
    pool_fault_limit: int = 2
    #: report cells that fail even after retries in run metadata and
    #: continue with the surviving cells, instead of aborting the sweep
    partial: bool = False
    #: kernel backend name ("" = env/default resolution, see
    #: :mod:`repro.kernels`); salted into analysis/paths/timing keys
    backend: str = ""
    #: enable the mmap-backed columnar artifact plane (second cache
    #: tier, :mod:`repro.harness.artifacts`); requires ``cache`` and a
    #: little-endian host, silently off otherwise
    artifacts: bool = True
    #: group prefetch cells that share a workload into one worker task
    #: so the cell's trace/analysis materialize once per batch
    batch_cells: bool = True


def _env_int(name: str, default: str) -> int:
    text = os.environ.get(name, default)
    try:
        return int(text)
    except ValueError:
        raise ValueError(
            "%s must be an integer, got %r" % (name, text))


def _env_float(name: str, default: str) -> float:
    text = os.environ.get(name, default)
    try:
        return float(text)
    except ValueError:
        raise ValueError(
            "%s must be a number, got %r" % (name, text))


def config_from_env() -> EngineConfig:
    """Engine defaults, overridable through environment variables
    (``REPRO_JOBS``, ``REPRO_CACHE=0``, ``REPRO_CACHE_DIR``,
    ``REPRO_CELL_TIMEOUT``, ``REPRO_RETRIES``, ``REPRO_RETRY_BACKOFF``,
    ``REPRO_PARTIAL=1``, ``REPRO_BACKEND``, ``REPRO_ARTIFACTS=0``,
    ``REPRO_BATCH_CELLS=0``) so embeddings like pytest
    pick them up without plumbing flags.  Malformed numeric values
    raise ``ValueError`` naming the offending variable."""
    return EngineConfig(
        jobs=_env_int("REPRO_JOBS", "1"),
        cache=os.environ.get("REPRO_CACHE", "1") != "0",
        cache_dir=os.environ.get("REPRO_CACHE_DIR", ".repro-cache"),
        cell_timeout=_env_float("REPRO_CELL_TIMEOUT", "600"),
        retries=_env_int("REPRO_RETRIES", "1"),
        retry_backoff=_env_float("REPRO_RETRY_BACKOFF", "0.05"),
        partial=os.environ.get("REPRO_PARTIAL", "0") == "1",
        backend=os.environ.get("REPRO_BACKEND", ""),
        artifacts=os.environ.get("REPRO_ARTIFACTS", "1") != "0",
        batch_cells=os.environ.get("REPRO_BATCH_CELLS", "1") != "0",
    )


def _plane_for(config: EngineConfig
               ) -> Optional[artifacts.ArtifactPlane]:
    """The artifact plane for *config*, or ``None`` when it is off
    (no cache, disabled, or an unsupported big-endian host)."""
    if config.cache and config.artifacts and artifacts.PLANE_SUPPORTED:
        return artifacts.ArtifactPlane(config.cache_dir)
    return None


# ---------------------------------------------------------------------
# Stage accounting
# ---------------------------------------------------------------------


class StageStats:
    """Per-stage hit/miss/compute-seconds counters (plus totals the
    run metadata wants).  ``snapshot()``/``delta_since()`` attribute
    activity to individual experiments."""

    def __init__(self):
        self.counts: Dict[str, Dict[str, float]] = {}
        self.instructions = 0
        self.retries = 0
        #: pool-level faults seen (worker crash/hang/timeout or an
        #: unpicklable result payload); drives serial degradation
        self.pool_faults = 0
        #: cells that failed even after retries, in partial mode:
        #: ``[{"cell": ..., "error": ...}, ...]``
        self.failed_cells: List[Dict[str, str]] = []

    def add(self, stage: str, hit: bool, seconds: float) -> None:
        bucket = self.counts.setdefault(
            stage, {"hits": 0, "misses": 0, "seconds": 0.0})
        bucket["hits" if hit else "misses"] += 1
        bucket["seconds"] += seconds

    def merge_stage_report(self,
                           report: Dict[str, Dict[str, object]]) -> None:
        for stage, info in report.items():
            self.add(stage, bool(info["hit"]), float(info["seconds"]))

    def hits(self, stage: str) -> int:
        return int(self.counts.get(stage, {}).get("hits", 0))

    def misses(self, stage: str) -> int:
        return int(self.counts.get(stage, {}).get("misses", 0))

    def snapshot(self) -> Dict[str, object]:
        return {
            "counts": {stage: dict(bucket)
                       for stage, bucket in self.counts.items()},
            "instructions": self.instructions,
        }

    def delta_since(self, snapshot: Dict[str, object]
                    ) -> Tuple[Dict[str, Dict[str, object]], int]:
        """(per-stage delta dict, instruction-count delta)."""
        before = snapshot["counts"]
        delta: Dict[str, Dict[str, object]] = {}
        for stage, bucket in self.counts.items():
            old = before.get(stage, {"hits": 0, "misses": 0,
                                     "seconds": 0.0})
            entry = {
                "hits": int(bucket["hits"] - old["hits"]),
                "misses": int(bucket["misses"] - old["misses"]),
                "seconds": round(bucket["seconds"] - old["seconds"], 3),
            }
            if entry["hits"] or entry["misses"]:
                delta[stage] = entry
        return delta, self.instructions - snapshot["instructions"]


# ---------------------------------------------------------------------
# Cells
# ---------------------------------------------------------------------


@dataclass(frozen=True)
class CellSpec:
    """One independent unit of suite work: a workload at a scale under
    fixed compiler options."""

    workload: str
    scale: float
    options: CompilerOptions

    def describe(self) -> str:
        return "%s@%s[%s]" % (self.workload, self.scale,
                              self.options.to_key())


@dataclass
class CellArtifact:
    """Everything one cell produced, reconstructed as native objects."""

    spec: CellSpec
    trace: Trace
    analysis: DeadnessAnalysis
    output: List[object]
    compile_key: str
    trace_key: str
    analysis_key: str
    #: per-stage ``{"hit": bool, "seconds": float}``
    stages: Dict[str, Dict[str, object]] = field(default_factory=dict)


def _bools_to_bytes(values: Sequence[bool]) -> bytes:
    return bytes(bytearray(values))


def _bytes_to_bools(blob: bytes) -> List[bool]:
    return [byte == 1 for byte in blob]


#: compile_key -> (Program, StaticTable); one assemble + static-table
#: build per distinct program per process.  Cells in a sweep share a
#: handful of programs, and both the payload computation and the
#: parent-side materialization need them — this keeps the shared cost
#: out of every per-cell path (the objects are immutable in use).
_PROGRAM_MEMO: Dict[str, Tuple["object", "object"]] = {}


def _program_for(compile_key: str, asm: str, name: str):
    """``(program, statics)`` for one compiled cell, memoized."""
    entry = _PROGRAM_MEMO.get(compile_key)
    if entry is None:
        program = assemble(asm, name=name)
        entry = (program, StaticTable(program))
        _PROGRAM_MEMO[compile_key] = entry
    return entry


#: Sentinel: resolve the artifact plane from the config (pool workers,
#: which cannot share the parent engine's handle).
_PLANE_AUTO = object()


def _bundle_output(bundle) -> "object":
    """A trace bundle's stored emulator output, or :data:`MISS` when
    the pickled column is itself unreadable (treated as a plane miss —
    the checksum already passed, so this is vanishingly rare)."""
    try:
        return artifacts.unpack_output(bundle)
    except Exception:
        return MISS


def _compute_cell_payload(spec: CellSpec,
                          config: EngineConfig,
                          cache: Optional[CacheDir] = None,
                          injected: Tuple[str, ...] = (),
                          plane: "object" = _PLANE_AUTO
                          ) -> Dict[str, object]:
    """Run one cell's compile → trace → analysis chain, using and
    populating the on-disk cache.  Top-level so pool workers can
    execute it; returns only plainly picklable data.

    *cache* lets the serial path reuse the engine's own
    :class:`CacheDir` handle so its robustness counters accrue in one
    place; pool workers pass ``None`` and build their own.  *injected*
    carries the worker-level fault points the parent drew for this
    dispatch (:func:`repro.harness.faults.draw_cell_faults`).

    *plane* is the artifact plane (second cache tier): with it, a hot
    cell attaches mmap-backed column bundles instead of unpickling
    lists, and the returned payload carries
    :class:`~repro.harness.artifacts.ArtifactHandle` references
    (``"trace_artifact"``/``"analysis_artifact"``) instead of the
    column data — the parent re-attaches the same bundles by checksum.
    The engine passes its own handle on the serial path;
    :data:`_PLANE_AUTO` resolves from *config* (pool workers);
    ``None`` forces the pickle tier.
    """
    if "worker.hang" in injected:
        time.sleep(faults.hang_seconds())
    if "worker.crash" in injected:
        raise faults.WorkerCrash(
            "injected worker crash in cell %s" % spec.describe())
    if config.backend:
        # Pool workers may be spawned (not forked): pin the kernel
        # backend from the config so workers and parent always agree
        # with the backend salt in the keys below.
        kernels.set_default_backend(config.backend)
    if cache is None and config.cache:
        cache = CacheDir(config.cache_dir)
    if plane is _PLANE_AUTO:
        plane = _plane_for(config)
    workload = get_workload(spec.workload)
    source = workload.source(spec.scale)
    stages: Dict[str, Dict[str, object]] = {}

    # -- compile ------------------------------------------------------
    compile_key = stable_hash("compile", spec.workload, source,
                              spec.options.to_key(),
                              stage_salt("compile"))
    started = time.perf_counter()
    asm = cache.load("compile", compile_key) if cache else MISS
    hit = isinstance(asm, str)
    if not hit:
        asm = compile_source(source, spec.options)
        if cache:
            cache.store("compile", compile_key, asm)
    stages["compile"] = {"hit": hit,
                         "seconds": time.perf_counter() - started}
    program, _statics = _program_for(compile_key, asm, spec.workload)

    # -- trace --------------------------------------------------------
    trace_key = stable_hash("trace", compile_key, str(MAX_STEPS),
                            stage_salt("trace"))
    started = time.perf_counter()
    expected = workload.reference(spec.scale)
    t_key = (artifacts.artifact_key("trace", trace_key)
             if plane is not None else None)
    pcs = taken = addrs = None
    trace_handle = None
    trace_bundle = None
    hit = False
    if plane is not None:
        bundle = plane.attach(t_key)
        if bundle is not None:
            candidate = (_bundle_output(bundle)
                         if artifacts.is_trace_bundle(bundle) else MISS)
            if candidate == expected:
                hit = True
                output = candidate
                trace_handle = bundle.handle(t_key)
                trace_bundle = bundle
            else:
                bundle.close()
    if not hit:
        entry = cache.load("trace", trace_key) if cache else MISS
        hit = (isinstance(entry, dict)
               and entry.get("output") == expected)
        if hit:
            pcs, taken, addrs = (entry["pcs"], entry["taken"],
                                 entry["addrs"])
            output = entry["output"]
        else:
            machine, trace = run_program(program, max_steps=MAX_STEPS)
            if machine.output != expected:
                raise AssertionError(
                    "workload %r produced %r, expected %r" % (
                        spec.workload, machine.output, expected))
            pcs, taken, addrs = trace.pcs, trace.taken, trace.addrs
            output = machine.output
            if cache:
                cache.store("trace", trace_key,
                            {"pcs": pcs, "taken": taken, "addrs": addrs,
                             "output": output})
        if plane is not None:
            # Backfill the plane so the next attach (this process or
            # any sibling worker) is zero-copy.
            trace_handle = artifacts.store_trace_bundle(
                plane, t_key, program, pcs, taken, addrs, output)
    stages["trace"] = {"hit": hit,
                       "seconds": time.perf_counter() - started}
    n = trace_bundle.n if trace_bundle is not None else len(pcs)

    # -- analysis -----------------------------------------------------
    # The backend fingerprint keeps entries produced under different
    # kernel backends apart (contents are byte-identical by contract,
    # but a backend bug must never masquerade as a cache hit).
    analysis_key = stable_hash("analysis", trace_key,
                               kernels.backend_fingerprint(),
                               stage_salt("analysis"))
    started = time.perf_counter()
    a_key = (artifacts.artifact_key("analysis", analysis_key)
             if plane is not None else None)
    dead_blob = direct_blob = counts = fused_doc = None
    analysis_handle = None
    hit = False
    if plane is not None:
        a_bundle = plane.attach(a_key)
        if a_bundle is not None:
            if artifacts.is_analysis_bundle(a_bundle, n):
                hit = True
                analysis_handle = a_bundle.handle(a_key)
            else:
                a_bundle.close()
    if not hit:
        entry = cache.load("analysis", analysis_key) if cache else MISS
        hit = (isinstance(entry, dict)
               and len(entry.get("dead", b"")) == n
               and "fused" in entry)
        if hit:
            dead_blob, direct_blob = entry["dead"], entry["direct"]
            counts = entry["counts"]
            fused_doc = entry["fused"]
        else:
            if pcs is None:
                # Trace came from the plane: hydrate its columns once
                # for the analysis pass (and let the kernels pull the
                # precomputed derived columns straight off the map).
                pcs = trace_bundle.ints("pcs")
                taken = trace_bundle.bools("taken")
                addrs = trace_bundle.ints("addrs")
            trace = Trace(program)
            trace.pcs, trace.taken, trace.addrs = pcs, taken, addrs
            trace.artifact_bundle = trace_bundle
            analysis = analyze_deadness(trace)
            dead_blob = _bools_to_bytes(analysis.dead)
            direct_blob = _bools_to_bytes(analysis.direct)
            counts = {
                "n_dynamic": analysis.n_dynamic,
                "n_eligible": analysis.n_eligible,
                "n_dead": analysis.n_dead,
                "n_direct": analysis.n_direct,
                "n_transitive": analysis.n_transitive,
                "n_dead_stores": analysis.n_dead_stores,
            }
            fused_doc = _fused_to_doc(analysis.fused)
            if cache:
                cache.store("analysis", analysis_key,
                            {"dead": dead_blob, "direct": direct_blob,
                             "counts": counts, "fused": fused_doc})
        if plane is not None:
            analysis_handle = artifacts.store_analysis_bundle(
                plane, a_key, n, dead_blob, direct_blob, counts,
                fused_doc)
    stages["analysis"] = {"hit": hit,
                          "seconds": time.perf_counter() - started}

    payload: Dict[str, object] = {
        "compile_key": compile_key,
        "trace_key": trace_key,
        "analysis_key": analysis_key,
        "asm": asm,
        "output": output,
        "n": n,
        "stages": stages,
    }
    if trace_handle is not None:
        payload["trace_artifact"] = trace_handle
    else:
        payload["pcs"] = pcs
        payload["taken"] = taken
        payload["addrs"] = addrs
    if analysis_handle is not None:
        payload["analysis_artifact"] = analysis_handle
    else:
        payload["dead"] = dead_blob
        payload["direct"] = direct_blob
        payload["counts"] = counts
        payload["fused"] = fused_doc
    if "artifact.unpicklable" in injected:
        # Poison the result pipe: the pool's encoder fails to pickle
        # this, the parent sees the error and recomputes serially.
        payload["_poison"] = lambda: None
    return payload


def _worker_obs_config():
    """The ObsConfig pool workers should run under (None = telemetry
    off, no worker-side collection or delta serialization at all).
    Shipping the parent's config keeps the worker's timing-key obs
    fingerprint identical to the parent's, fork or spawn."""
    collector = obs.get_collector()
    return collector.config if collector is not None else None


def _pool_cell_worker(spec: CellSpec, config: EngineConfig,
                      injected: Tuple[str, ...],
                      obs_config) -> Dict[str, object]:
    """Pool entry point for one cell: install a fresh per-task
    collector (never the fork-inherited copy of the parent's), compute
    the payload, and ride the worker's telemetry delta home on it.
    With *obs_config* ``None`` this is exactly
    :func:`_compute_cell_payload` — no collector, no snapshot, no
    extra bytes on the result pipe."""
    from repro.obs import delta as obs_delta

    if obs_config is None:
        return _compute_cell_payload(spec, config, None, injected)
    obs_delta.install_worker_collector(obs_config)
    try:
        payload = _compute_cell_payload(spec, config, None, injected)
        payload["obs_delta"] = obs_delta.snapshot_delta()
        return payload
    finally:
        obs.reset_obs()


def _fused_to_doc(fused: FusedColumns) -> Dict[str, object]:
    """The fused pass's extra columns as plain picklable data (the
    deadness columns already travel as blobs + counts)."""
    return {
        "distances": fused.kills.distances,
        "unkilled": fused.kills.unkilled,
        "by_provenance": fused.kills.by_provenance,
        "totals": fused.counts.totals,
        "deads": fused.counts.deads,
    }


def _doc_to_fused(doc: Dict[str, object], dead: List[bool],
                  direct: List[bool],
                  counts: Dict[str, int]) -> FusedColumns:
    return FusedColumns(
        deadness=DeadnessColumns(
            dead=dead, direct=direct,
            n_eligible=counts["n_eligible"], n_dead=counts["n_dead"],
            n_direct=counts["n_direct"],
            n_dead_stores=counts["n_dead_stores"]),
        kills=KillColumns(
            distances=doc["distances"], unkilled=doc["unkilled"],
            by_provenance=doc["by_provenance"]),
        counts=StaticCounts(totals=doc["totals"], deads=doc["deads"]))


def _payload_to_artifact(spec: CellSpec,
                         payload: Dict[str, object],
                         plane: Optional[artifacts.ArtifactPlane] = None
                         ) -> CellArtifact:
    """Rebuild native Trace/DeadnessAnalysis objects from a payload.
    Used identically for serial, pooled, and cache-hit paths so every
    path yields bit-identical artifacts.

    Payloads carrying artifact handles instead of column data hydrate
    from the mmap-backed bundles; a handle that no longer attaches
    (file vanished, quarantined, checksum changed, or *plane* is off)
    raises :class:`~repro.harness.artifacts.ArtifactUnavailable` —
    callers fall back to recomputing from the pickle tier
    (:func:`_materialize_payload`)."""
    program, statics = _program_for(payload["compile_key"],
                                    payload["asm"], spec.workload)
    trace = Trace(program)
    t_handle = payload.get("trace_artifact")
    if t_handle is None:
        trace.pcs = payload["pcs"]
        trace.taken = payload["taken"]
        trace.addrs = payload["addrs"]
    else:
        bundle = (plane.attach_handle(t_handle)
                  if plane is not None else None)
        if bundle is None or not artifacts.is_trace_bundle(bundle):
            raise artifacts.ArtifactUnavailable(
                "trace bundle %s did not re-attach" % t_handle.key[:12])
        trace.pcs = bundle.ints("pcs")
        trace.taken = bundle.bools("taken")
        trace.addrs = bundle.ints("addrs")
        trace.artifact_bundle = bundle
    a_handle = payload.get("analysis_artifact")
    if a_handle is None:
        counts = payload["counts"]
        dead = _bytes_to_bools(payload["dead"])
        direct = _bytes_to_bools(payload["direct"])
        fused_doc = payload["fused"]
    else:
        a_bundle = (plane.attach_handle(a_handle)
                    if plane is not None else None)
        if a_bundle is None or not artifacts.is_analysis_bundle(
                a_bundle, len(trace.pcs)):
            raise artifacts.ArtifactUnavailable(
                "analysis bundle %s did not re-attach"
                % a_handle.key[:12])
        counts = artifacts.counts_from_bundle(a_bundle)
        dead = a_bundle.bools("dead")
        direct = a_bundle.bools("direct")
        fused_doc = artifacts.fused_doc_from_bundle(a_bundle)
    analysis = DeadnessAnalysis(
        trace=trace, statics=statics, dead=dead, direct=direct,
        fused=_doc_to_fused(fused_doc, dead, direct, counts),
        **counts)
    return CellArtifact(
        spec=spec, trace=trace, analysis=analysis,
        output=payload["output"],
        compile_key=payload["compile_key"],
        trace_key=payload["trace_key"],
        analysis_key=payload["analysis_key"],
        stages=payload["stages"])


def _materialize_payload(spec: CellSpec, payload: Dict[str, object],
                         config: EngineConfig,
                         cache: Optional[CacheDir],
                         plane: Optional[artifacts.ArtifactPlane]
                         ) -> CellArtifact:
    """Materialize a payload, degrading gracefully when a shipped
    artifact handle no longer attaches: the cell recomputes through
    the pickle tier (which itself falls back to emulation), so a
    damaged plane can cost time but never a result."""
    try:
        return _payload_to_artifact(spec, payload, plane)
    except artifacts.ArtifactUnavailable:
        obs.metrics().counter(
            "repro_artifact_fallback_total",
            "cells re-materialized after a handle failed to attach"
        ).inc()
        payload = _compute_cell_payload(spec, config, cache, (),
                                        plane=None)
        return _payload_to_artifact(spec, payload, None)


def _analysis_fingerprint(analysis: DeadnessAnalysis) -> str:
    """Discriminates differently-parameterized analyses of the same
    trace (e.g. ``track_stores=False``) in timing keys."""
    return "%d,%d,%d" % (analysis.n_dead, analysis.n_direct,
                         analysis.n_dead_stores)


def _simulate_key(trace_key: str, machine_config: MachineConfig,
                  analysis: Optional[DeadnessAnalysis]) -> str:
    fingerprint = _analysis_fingerprint(analysis) if analysis else "-"
    parts = ["timing", trace_key, machine_config.to_key(),
             fingerprint, kernels.backend_fingerprint(),
             stage_salt("timing")]
    # Observed simulations carry their timeline inside the cached
    # result; keep them apart from plain entries (and from other
    # sampling configurations).
    obs_fingerprint = obs.timing_fingerprint()
    if obs_fingerprint:
        parts.append(obs_fingerprint)
    return stable_hash(*parts)


def _prefetch_sim_worker(args: Tuple[CellSpec,
                                     Tuple[MachineConfig, ...],
                                     EngineConfig, Tuple[str, ...],
                                     "object"]
                         ) -> Dict[str, object]:
    """Pool worker: materialize a (hot-cache) cell once, then run one
    timing simulation per machine config in the batch, persisting each
    and returning all of them for the in-memory memo.  Batching is the
    point: the cell's trace/analysis attach (or unpickle) once per
    *batch*, not once per simulation.  Like cell dispatch, the batch
    runs under a fresh per-task collector (the parent's ObsConfig, so
    timing keys agree) and ships its telemetry delta back in the
    result — ``{"results": [...], "obs_delta": ... or absent}``."""
    from repro.obs import delta as obs_delta

    spec, machine_configs, config, injected, obs_config = args
    if obs_config is not None:
        obs_delta.install_worker_collector(obs_config)
    try:
        cache = CacheDir(config.cache_dir) if config.cache else None
        plane = _plane_for(config)
        payload = _compute_cell_payload(spec, config, cache,
                                        injected=injected, plane=plane)
        artifact = _materialize_payload(spec, payload, config, cache,
                                        plane)
        results: List[Tuple[str, PipelineResult, float]] = []
        for machine_config in machine_configs:
            key = _simulate_key(artifact.trace_key, machine_config,
                                artifact.analysis)
            started = time.perf_counter()
            result = cache.load("timing", key) if cache else MISS
            if not isinstance(result, PipelineResult):
                result = simulate(artifact.trace, machine_config,
                                  artifact.analysis)
                if cache:
                    cache.store("timing", key, result)
            results.append((key, result,
                            time.perf_counter() - started))
        out: Dict[str, object] = {"results": results}
        if obs_config is not None:
            out["obs_delta"] = obs_delta.snapshot_delta()
        return out
    finally:
        if obs_config is not None:
            obs.reset_obs()


# ---------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------


def _pool_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover (non-fork platforms)
        return multiprocessing.get_context("spawn")


class Engine:
    """Stage-aware executor for experiment cells (module docstring)."""

    def __init__(self, config: Optional[EngineConfig] = None):
        self.config = config if config is not None else config_from_env()
        if self.config.backend:
            kernels.set_default_backend(self.config.backend)
        self.cache: Optional[CacheDir] = (
            CacheDir(self.config.cache_dir) if self.config.cache
            else None)
        #: the mmap-backed columnar artifact plane (``None`` when off);
        #: its ``counters`` feed :meth:`robustness`
        self.plane = _plane_for(self.config)
        self.stats = StageStats()
        #: set once ``pool_fault_limit`` pool faults accumulate: the
        #: engine stops using worker pools for the rest of its life
        self._pool_degraded = False
        #: in-memory memo for timing results (tiny objects); serves
        #: repeated simulations and prefetched no-cache results
        self._sim_memo: Dict[str, PipelineResult] = {}
        #: worker pid -> stable small ordinal for telemetry labels
        #: (``worker="0"``, ``worker="1"``, ... in first-seen order)
        self._worker_ids: Dict[int, str] = {}

    # -- cells --------------------------------------------------------

    def run_cells(self, specs: Sequence[CellSpec],
                  partial: Optional[bool] = None) -> List[CellArtifact]:
        """Execute every cell; results in input order regardless of
        worker completion order.

        With *partial* (default: ``config.partial``) a cell that still
        fails after every retry is dropped from the result list and
        reported in ``stats.failed_cells`` (and from there in run
        metadata), instead of aborting the whole sweep.
        """
        if partial is None:
            partial = self.config.partial
        if (self.config.jobs <= 1 or len(specs) <= 1
                or self._pool_degraded):
            payloads = [self._serial_cell(spec, partial)
                        for spec in specs]
        else:
            payloads = self._run_cells_pool(specs, partial)
        collector = obs.get_collector()
        materialized = []
        for spec, payload in zip(specs, payloads):
            if payload is None:  # failed cell in partial mode
                continue
            self.stats.merge_stage_report(payload["stages"])
            self.stats.instructions += payload["n"]
            if collector is not None:
                self._note_cell(collector, spec, payload["stages"])
            materialized.append(self._materialize(spec, payload))
        return materialized

    def _materialize(self, spec: CellSpec,
                     payload: Dict[str, object]) -> CellArtifact:
        return _materialize_payload(spec, payload, self.config,
                                    self.cache, self.plane)

    @staticmethod
    def _note_cell(collector, spec: CellSpec,
                   stages: Dict[str, Dict[str, object]]) -> None:
        """Telemetry for one materialized cell: a span per stage (the
        worker's measured wall time, recorded post-hoc since pool cells
        run in other processes) plus registry counters."""
        registry = collector.registry
        tracer = collector.tracer
        cell = spec.describe()
        for stage, info in stages.items():
            hit = bool(info["hit"])
            seconds = float(info["seconds"])
            tracer.add("stage:%s" % stage, seconds, hit=hit, cell=cell)
            registry.counter(
                "repro_stage_total", "stage executions by outcome",
                stage=stage, result="hit" if hit else "miss").inc()
            registry.histogram(
                "repro_stage_seconds", "stage wall time",
                stage=stage).observe(seconds)

    def _cell_with_retry(self, spec: CellSpec) -> Dict[str, object]:
        """Compute one cell serially, retrying with exponential
        backoff (``retry_backoff * 2**attempt`` seconds between
        attempts).  A persistent failure still raises."""
        attempts = 1 + max(self.config.retries, 0)
        for attempt in range(attempts):
            try:
                return _compute_cell_payload(
                    spec, self.config, self.cache,
                    faults.draw_cell_faults(pool=False),
                    plane=self.plane)
            except Exception:
                if attempt + 1 == attempts:
                    raise
                self._note_retry()
                delay = self.config.retry_backoff * (2 ** attempt)
                if delay > 0:
                    time.sleep(delay)
        raise AssertionError("unreachable")

    def _serial_cell(self, spec: CellSpec,
                     partial: bool) -> Optional[Dict[str, object]]:
        """One cell through the retry ladder; in partial mode a
        persistent failure is recorded instead of raised."""
        try:
            return self._cell_with_retry(spec)
        except Exception as error:
            if not partial:
                raise
            self.stats.failed_cells.append({
                "cell": spec.describe(),
                "error": "%s: %s" % (type(error).__name__, error),
            })
            obs.metrics().counter(
                "repro_cells_failed_total",
                "cells dropped after exhausting retries").inc()
            return None

    def _worker_label(self, pid) -> str:
        label = self._worker_ids.get(pid)
        if label is None:
            label = str(len(self._worker_ids))
            self._worker_ids[pid] = label
        return label

    def _absorb_worker_delta(self, payload) -> None:
        """Merge a pool result's telemetry delta into the parent
        collector with a ``worker="<n>"`` label (no-op — and no key
        lookup cost beyond one ``dict.pop`` — when the payload carries
        none or telemetry is off)."""
        if not isinstance(payload, dict):
            return
        delta = payload.pop("obs_delta", None)
        if delta is None:
            return
        collector = obs.get_collector()
        if collector is None:
            return
        from repro.obs import delta as obs_delta

        obs_delta.merge_delta(collector, delta,
                              worker=self._worker_label(
                                  delta.get("pid")))

    def _note_retry(self) -> None:
        self.stats.retries += 1
        obs.metrics().counter(
            "repro_cell_retries_total", "cell retry attempts").inc()

    def _note_pool_fault(self) -> None:
        """One pool-level fault (crash/hang/timeout/unpicklable
        result); enough of them trips serial degradation."""
        self.stats.pool_faults += 1
        obs.metrics().counter(
            "repro_pool_faults_total", "pool worker faults").inc()
        if (not self._pool_degraded
                and self.stats.pool_faults
                >= max(self.config.pool_fault_limit, 1)):
            self._pool_degraded = True
            obs.metrics().counter(
                "repro_pool_degraded_total",
                "engines degraded from pool to serial").inc()

    def _run_cells_pool(self, specs: Sequence[CellSpec],
                        partial: bool
                        ) -> List[Optional[Dict[str, object]]]:
        """Fan cells across a pool with supervision: each faulted cell
        is recomputed serially in the parent, and after
        ``pool_fault_limit`` faults the engine abandons the pool (this
        call and every later one run serially — graceful degradation
        on machines where workers keep dying)."""
        workers = min(self.config.jobs, len(specs))
        payloads: List[Optional[Dict[str, object]]] = \
            [None] * len(specs)
        done = [False] * len(specs)
        context = _pool_context()
        try:
            pool = context.Pool(processes=workers)
        except Exception:
            self._note_pool_fault()
            self._pool_degraded = True
            return [self._serial_cell(spec, partial) for spec in specs]
        try:
            obs_config = _worker_obs_config()
            pending = [
                pool.apply_async(
                    _pool_cell_worker,
                    (spec, self.config,
                     faults.draw_cell_faults(pool=True), obs_config))
                for spec in specs]
            for index, handle in enumerate(pending):
                try:
                    payloads[index] = handle.get(
                        self.config.cell_timeout)
                    self._absorb_worker_delta(payloads[index])
                    done[index] = True
                except Exception:
                    # Worker crash, unpicklable result, or timeout:
                    # recompute this cell serially in the parent.  A
                    # genuine bug still raises on the retry (unless
                    # partial reporting is on).
                    self._note_pool_fault()
                    self._note_retry()
                    payloads[index] = self._serial_cell(specs[index],
                                                        partial)
                    done[index] = True
                    if self._pool_degraded:
                        break
        finally:
            pool.terminate()
            pool.join()
        for index, spec in enumerate(specs):
            if not done[index]:
                payloads[index] = self._serial_cell(spec, partial)
        return payloads

    # -- timing stage -------------------------------------------------

    def simulate(self, trace: Trace, machine_config: MachineConfig,
                 analysis: Optional[DeadnessAnalysis] = None,
                 trace_key: Optional[str] = None) -> PipelineResult:
        """The cached timing stage.  Without a *trace_key* (ad-hoc
        traces) the simulation runs uncached."""
        if trace_key is None:
            started = time.perf_counter()
            result = simulate(trace, machine_config, analysis)
            self._note_timing(
                "adhoc:%s:%s" % (trace.program.name,
                                 machine_config.to_key()),
                trace, machine_config, result, False,
                time.perf_counter() - started)
            return result
        key = _simulate_key(trace_key, machine_config, analysis)
        started = time.perf_counter()
        memo = self._sim_memo.get(key)
        if memo is not None:
            seconds = time.perf_counter() - started
            self.stats.add("timing", True, seconds)
            self._note_timing(key, trace, machine_config, memo, True,
                              seconds)
            return memo
        if self.cache:
            cached = self.cache.load("timing", key)
            if isinstance(cached, PipelineResult):
                self._sim_memo[key] = cached
                seconds = time.perf_counter() - started
                self.stats.add("timing", True, seconds)
                self._note_timing(key, trace, machine_config, cached,
                                  True, seconds)
                return cached
        result = simulate(trace, machine_config, analysis)
        self._sim_memo[key] = result
        if self.cache:
            self.cache.store("timing", key, result)
        seconds = time.perf_counter() - started
        self.stats.add("timing", False, seconds)
        self._note_timing(key, trace, machine_config, result, False,
                          seconds)
        return result

    def _note_timing(self, key: str, trace: Trace,
                     machine_config: MachineConfig,
                     result: PipelineResult, hit: bool,
                     seconds: float) -> None:
        """Telemetry for one timing-stage request: span, counters, and
        the sampled pipeline timeline (which rides inside the cached
        :class:`PipelineResult`, so hits register it too; the collector
        deduplicates repeat requests by *key*)."""
        collector = obs.get_collector()
        if collector is None:
            return
        label = "%s/%s" % (trace.program.name,
                           "elim" if machine_config.eliminate
                           else "base")
        collector.tracer.add("timing:%s" % label, seconds, hit=hit,
                             workload=trace.program.name)
        registry = collector.registry
        registry.counter(
            "repro_timing_total", "timing simulations by outcome",
            result="hit" if hit else "miss").inc()
        registry.histogram(
            "repro_timing_seconds", "timing wall time").observe(seconds)
        timeline_doc = getattr(result, "timeline", None)
        if timeline_doc:
            collector.add_timeline(key, label, trace.program.name,
                                   timeline_doc,
                                   result.stats.to_dict())

    def prefetch_simulations(
            self, items: Sequence[Tuple["object", MachineConfig]]
    ) -> None:
        """Warm the timing stage for (run, machine-config) pairs in
        parallel.  *items* pair objects exposing ``.spec``,
        ``.cache_key`` and ``.analysis`` (:class:`SuiteRun` or
        :class:`CellArtifact`-shaped) with machine configs.  Purely an
        accelerator: serial ``simulate`` calls afterwards hit the memo
        or disk; any prefetch failure silently falls back."""
        if self.config.jobs <= 1:
            return
        #: cell -> (spec, pending machine configs); with batched
        #: dispatch each group becomes ONE worker task that
        #: materializes the cell once and runs every simulation
        grouped: Dict[str, Tuple[CellSpec, List[MachineConfig]]] = {}
        order: List[str] = []
        for run, machine_config in items:
            trace_key = getattr(run, "cache_key", None) or \
                getattr(run, "trace_key", None)
            if trace_key is None:
                continue
            key = _simulate_key(trace_key, machine_config, run.analysis)
            if key in self._sim_memo:
                continue
            if self.cache and os.path.exists(
                    self.cache.entry_path("timing", key)):
                continue
            label = run.spec.describe()
            if label not in grouped:
                grouped[label] = (run.spec, [])
                order.append(label)
            grouped[label][1].append(machine_config)
        if not grouped or self._pool_degraded:
            return
        obs_config = _worker_obs_config()
        todo: List[Tuple[CellSpec, Tuple[MachineConfig, ...],
                         EngineConfig, Tuple[str, ...], "object"]] = []
        for label in order:
            cell_spec, machine_configs = grouped[label]
            if self.config.batch_cells:
                batches = [tuple(machine_configs)]
            else:
                batches = [(machine_config,)
                           for machine_config in machine_configs]
            for batch in batches:
                todo.append((cell_spec, batch, self.config,
                             faults.draw_cell_faults(pool=True),
                             obs_config))
        workers = min(self.config.jobs, len(todo))
        context = _pool_context()
        with context.Pool(processes=workers) as pool:
            pending = [pool.apply_async(_prefetch_sim_worker, (args,))
                       for args in todo]
            for args, handle in zip(todo, pending):
                try:
                    # One timeout budget per simulation in the batch.
                    batch_result = handle.get(
                        self.config.cell_timeout * max(len(args[1]), 1))
                except Exception:
                    # Purely an accelerator: a faulted prefetch cell
                    # just falls back to the serial simulate path.
                    self._note_pool_fault()
                    continue
                self._absorb_worker_delta(batch_result)
                for key, result, _seconds in batch_result["results"]:
                    self._sim_memo[key] = result

    # -- paths stage --------------------------------------------------

    def paths_for(self, run: "object", path_bits: int) -> PathInfo:
        """Cached future-path precomputation for one suite run (an
        object with ``.trace``, ``.analysis`` and ``.cache_key``)."""
        trace_key = getattr(run, "cache_key", None)
        statics = run.analysis.statics
        if trace_key is None or self.cache is None:
            return compute_paths(run.trace, statics,
                                 path_bits=path_bits)
        key = stable_hash("paths", trace_key, str(path_bits),
                          kernels.backend_fingerprint(),
                          stage_salt("paths"))
        started = time.perf_counter()
        cached = self.cache.load("paths", key)
        hit = isinstance(cached, PathInfo)
        if not hit:
            cached = compute_paths(run.trace, statics,
                                   path_bits=path_bits)
            self.cache.store("paths", key, cached)
        seconds = time.perf_counter() - started
        self.stats.add("paths", hit, seconds)
        collector = obs.get_collector()
        if collector is not None:
            collector.tracer.add(
                "stage:paths", seconds, hit=hit,
                workload=run.trace.program.name)
            collector.registry.counter(
                "repro_stage_total", "stage executions by outcome",
                stage="paths",
                result="hit" if hit else "miss").inc()
        return cached

    # -- bookkeeping --------------------------------------------------

    def clear_memos(self) -> None:
        """Drop in-memory memoized results (tests bound memory)."""
        self._sim_memo.clear()
        _PROGRAM_MEMO.clear()

    def describe(self) -> Dict[str, object]:
        """Engine configuration for run metadata."""
        return {
            "jobs": self.config.jobs,
            "cache": self.config.cache,
            "cache_dir": os.path.abspath(self.config.cache_dir),
            "cell_timeout": self.config.cell_timeout,
            "retries": self.config.retries,
            "partial": self.config.partial,
            "backend": kernels.default_backend_name(),
            "backend_fingerprint": kernels.backend_fingerprint(),
            "artifacts": self.plane is not None,
            "batch_cells": self.config.batch_cells,
        }

    def robustness(self) -> Dict[str, object]:
        """Everything the robustness contract promises to report:
        retry/pool-fault/degradation counters, cache store-error and
        quarantine tallies, injected-fault counts, and any cells
        dropped in partial mode.  Lands in run metadata and is
        rendered by ``obs report``."""
        document: Dict[str, object] = {
            "retries": self.stats.retries,
            "pool_faults": self.stats.pool_faults,
            "degraded_to_serial": self._pool_degraded,
            "failed_cells": [dict(cell)
                             for cell in self.stats.failed_cells],
            "faults_injected": faults.fired_counts(),
        }
        if self.cache is not None:
            document["cache"] = dict(self.cache.counters)
        if self.plane is not None:
            document["artifacts"] = dict(self.plane.counters)
        return document


# ---------------------------------------------------------------------
# Module-level singleton
# ---------------------------------------------------------------------

_ENGINE: Optional[Engine] = None


def get_engine() -> Engine:
    """The process-wide engine (created from the environment on first
    use; reconfigured by :func:`configure`)."""
    global _ENGINE
    if _ENGINE is None:
        _ENGINE = Engine()
    return _ENGINE


def peek_engine() -> Optional[Engine]:
    """The process-wide engine if one exists, without creating one
    (creation pins the configured kernel backend process-wide)."""
    return _ENGINE


def configure(config: EngineConfig) -> Engine:
    """Install a fresh engine with *config* (CLI and benchmarks)."""
    global _ENGINE
    _ENGINE = Engine(config)
    return _ENGINE


def install(engine: Engine) -> Engine:
    """Install an already-built engine as the process singleton.  The
    experiment service uses this: jobs execute through the ordinary
    :func:`get_engine`-resolving paths, and every client must hit the
    service's one engine (one stage cache, one pool, one stats block),
    not a second freshly-configured one."""
    global _ENGINE
    _ENGINE = engine
    return _ENGINE


def reset_engine() -> None:
    """Forget the singleton (next :func:`get_engine` re-reads env)."""
    global _ENGINE
    _ENGINE = None
