"""The zero-copy columnar artifact plane (cache tier two).

The stage cache (``cachedir.py``) stores pickle blobs: correct, but a
hot multi-process sweep pays to *unpickle the same trace in every
worker, for every cell* — ~3 list-of-int decodes per cell plus the
same bytes pickled back through the result pipe.  The artifact plane
removes that data movement.  Each trace's decoded micro-op table and
derived kernel columns are persisted **once**, as a checksummed flat
columnar file that every process opens with ``mmap``:

* read-only mappings share the OS page cache — N workers attaching the
  same bundle cost one physical copy;
* columns are raw little-endian arrays at 64-byte-aligned offsets, so
  NumPy backends get **zero-copy** ``frombuffer`` views and list-based
  backends hydrate with one C-level ``array``/``bytearray`` pass;
* workers hand the parent an :class:`ArtifactHandle` (key + path +
  checksum + length) instead of the column data, so the result pipe
  carries ~100 bytes per cell instead of megabytes.

File format (``.cols``)::

    RPART1\\n                  magic (7 bytes)
    <64 hex sha256>\\n         checksum of everything that follows
    <one-line JSON TOC>\\n     {"schema","kind","n","columns","meta"}
    <zero padding>            to the next 64-byte boundary
    <column data>             raw arrays, each 64-byte aligned

TOC ``columns`` maps name -> ``[dtype, count, offset]`` with offsets
relative to the aligned data start; dtypes are ``i8`` (little-endian
int64) and ``u1`` (one byte per element: bools, 0/1 label blobs, or
raw pickled bytes).  The format is deliberately NumPy-*optional*: the
plane works (and is tested) without NumPy, it is just no longer
zero-copy there.

Robustness contract (docs/harness.md): the plane is an accelerator,
never a correctness dependency.  :meth:`ArtifactPlane.attach` returns
``None`` on any failure; a file that exists but fails header, bounds,
or checksum verification is quarantined under
``artifacts/_quarantine/`` and counted.  :meth:`ArtifactPlane.store`
swallows every exception (atomic temp-file + ``os.replace`` writes, so
crashed writers leave only ``*.tmp`` files for ``sweep_temp``).  The
``artifact.read.*``/``artifact.write.ioerror`` fault points inject all
of these failures deterministically.

Checksums are verified once per (path, size, mtime) per process and
memoized (:data:`_VERIFIED`); forked pool workers inherit the parent's
memo, so a hot sweep hashes each bundle once, not once per attach.
"""

from __future__ import annotations

import hashlib
import json
import mmap
import os
import pickle
import sys
import tempfile
from array import array
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised via subprocess test
    np = None

from repro.harness import faults
from repro.harness.cachedir import code_salt, stable_hash

__all__ = [
    "ARTIFACT_SCHEMA",
    "ArtifactHandle",
    "ArtifactPlane",
    "ArtifactUnavailable",
    "ColumnBundle",
    "CorruptArtifact",
    "MAGIC",
    "PLANE_SUPPORTED",
    "artifact_key",
    "encode_bundle",
    "fused_doc_from_bundle",
    "is_analysis_bundle",
    "is_trace_bundle",
    "store_analysis_bundle",
    "store_trace_bundle",
    "unpack_output",
]

#: First bytes of every bundle file.
MAGIC = b"RPART1\n"

#: Bundle format version; part of every artifact key, so a format
#: change can never serve stale bundles.
ARTIFACT_SCHEMA = "1"

#: Directory under the cache root holding the plane.
PLANE_DIR = "artifacts"

#: Corrupt bundles are moved here (mirrors ``stages/_quarantine``).
QUARANTINE_DIR = "_quarantine"

#: The format stores raw little-endian arrays; on a big-endian host the
#: engine simply leaves the plane off and runs on the pickle tier.
PLANE_SUPPORTED = sys.byteorder == "little"

_HEADER_LEN = len(MAGIC) + 64 + 1  # magic + checksum hex + newline
_ALIGN = 64
_ITEM_SIZE = {"i8": 8, "u1": 1}
#: TOC lines are one short JSON object; bounding the newline scan keeps
#: a garbage file from forcing a full-file search.
_TOC_SCAN_LIMIT = 1 << 20


class CorruptArtifact(Exception):
    """A bundle file exists but fails integrity verification."""


class ArtifactUnavailable(Exception):
    """A shipped :class:`ArtifactHandle` could not be re-attached
    (file vanished, quarantined, or checksum changed); callers fall
    back to the pickle tier."""


def artifact_key(kind: str, parent_key: str) -> str:
    """The plane key for one bundle: chained from the owning stage key
    plus the bundle schema, the active kernel backend (a backend bug
    must never masquerade as a plane hit — same rule as the analysis
    stage), and the salt of the code that writes/reads bundles."""
    from repro import kernels

    return stable_hash("artifact", kind, parent_key, ARTIFACT_SCHEMA,
                       kernels.backend_fingerprint(),
                       code_salt("kernels", "harness.artifacts"))


# ---------------------------------------------------------------------
# Column encoding
# ---------------------------------------------------------------------


def _aligned(position: int) -> int:
    return (position + _ALIGN - 1) // _ALIGN * _ALIGN


def i8_bytes(values) -> bytes:
    """Little-endian int64 raw bytes from a list or ndarray."""
    if np is not None:
        return np.ascontiguousarray(
            np.asarray(values, dtype="<i8")).tobytes()
    data = array("q", values)
    if sys.byteorder != "little":  # pragma: no cover - plane is off
        data.byteswap()
    return data.tobytes()


def u1_bytes(values) -> bytes:
    """One-byte-per-element raw bytes (bools, 0/1 blobs, raw bytes)."""
    if isinstance(values, (bytes, bytearray)):
        return bytes(values)
    if np is not None and isinstance(values, np.ndarray):
        return np.ascontiguousarray(values.astype(np.uint8)).tobytes()
    return bytes(bytearray(values))


def encode_bundle(kind: str, n: int,
                  columns: Sequence[Tuple[str, str, bytes]],
                  meta: Optional[Dict[str, object]] = None) -> bytes:
    """The on-disk representation of one bundle (module docstring)."""
    toc_columns: Dict[str, List[object]] = {}
    placed: List[Tuple[int, bytes]] = []
    position = 0
    for name, dtype, blob in columns:
        item = _ITEM_SIZE[dtype]
        if len(blob) % item:
            raise ValueError("column %r: %d bytes is not a multiple of "
                             "the %s item size" % (name, len(blob), dtype))
        position = _aligned(position)
        toc_columns[name] = [dtype, len(blob) // item, position]
        placed.append((position, blob))
        position += len(blob)
    toc = {"schema": ARTIFACT_SCHEMA, "kind": kind, "n": int(n),
           "columns": toc_columns, "meta": meta or {}}
    toc_line = json.dumps(toc, sort_keys=True,
                          separators=(",", ":")).encode("utf-8") + b"\n"
    data_start = _aligned(_HEADER_LEN + len(toc_line))
    body = bytearray(data_start - _HEADER_LEN + position)
    body[:len(toc_line)] = toc_line
    base = data_start - _HEADER_LEN
    for offset, blob in placed:
        body[base + offset:base + offset + len(blob)] = blob
    digest = hashlib.sha256(bytes(body)).hexdigest().encode("ascii")
    return MAGIC + digest + b"\n" + bytes(body)


# ---------------------------------------------------------------------
# Bundles and handles
# ---------------------------------------------------------------------


@dataclass(frozen=True)
class ArtifactHandle:
    """What crosses the pool's result pipe instead of column data."""

    key: str
    kind: str
    path: str
    checksum: str
    n: int


class ColumnBundle:
    """Read-only view of one parsed bundle (an mmap, normally)."""

    def __init__(self, path: str, buffer, mapped,
                 checksum: str, toc: Dict[str, object],
                 data_start: int):
        self.path = path
        self._buffer = buffer
        self._mapped = mapped
        self.checksum = checksum
        self.kind = str(toc.get("kind", ""))
        self.n = int(toc.get("n", 0))
        self.meta: Dict[str, object] = toc.get("meta") or {}
        self._columns: Dict[str, List[object]] = toc.get("columns") or {}
        self._data_start = data_start

    @classmethod
    def parse(cls, path: str, buffer) -> "ColumnBundle":
        """Parse a header; raises :class:`CorruptArtifact` on bad
        magic, malformed TOC, or any column outside the file bounds."""
        if len(buffer) < _HEADER_LEN or bytes(buffer[:len(MAGIC)]) != MAGIC:
            raise CorruptArtifact("bad magic: %s" % path)
        checksum = bytes(buffer[len(MAGIC):len(MAGIC) + 64]).decode(
            "ascii", "replace")
        if bytes(buffer[_HEADER_LEN - 1:_HEADER_LEN]) != b"\n":
            raise CorruptArtifact("truncated header: %s" % path)
        end = buffer.find(b"\n", _HEADER_LEN,
                          _HEADER_LEN + _TOC_SCAN_LIMIT)
        if end < 0:
            raise CorruptArtifact("missing TOC: %s" % path)
        try:
            toc = json.loads(bytes(buffer[_HEADER_LEN:end]).decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise CorruptArtifact("unparsable TOC: %s" % path)
        if not isinstance(toc, dict) or toc.get("schema") != ARTIFACT_SCHEMA:
            raise CorruptArtifact("schema mismatch: %s" % path)
        data_start = _aligned(end + 1)
        columns = toc.get("columns") or {}
        for name, entry in columns.items():
            try:
                dtype, count, offset = entry
                span = int(count) * _ITEM_SIZE[dtype]
                if data_start + int(offset) + span > len(buffer):
                    raise CorruptArtifact(
                        "column %r out of bounds: %s" % (name, path))
            except (KeyError, TypeError, ValueError):
                raise CorruptArtifact(
                    "malformed column %r: %s" % (name, path))
        return cls(path, buffer, None, checksum, toc, data_start)

    def verify(self) -> bool:
        """Whether the body matches the header checksum (zero-copy
        hashing over the mapped pages)."""
        digest = hashlib.sha256(
            memoryview(self._buffer)[_HEADER_LEN:]).hexdigest()
        return digest == self.checksum

    def handle(self, key: str) -> ArtifactHandle:
        return ArtifactHandle(key=key, kind=self.kind, path=self.path,
                              checksum=self.checksum, n=self.n)

    def close(self) -> None:
        mapped, self._mapped = self._mapped, None
        if mapped is not None:
            try:
                mapped.close()
            except (BufferError, OSError):
                # A live frombuffer view still references the map;
                # leave it to process teardown.
                pass

    # -- column access ------------------------------------------------

    def has(self, name: str) -> bool:
        return name in self._columns

    def _locate(self, name: str, dtype: str) -> Tuple[int, int]:
        entry = self._columns[name]
        if entry[0] != dtype:
            raise CorruptArtifact(
                "column %r is %s, wanted %s" % (name, entry[0], dtype))
        return int(entry[1]), self._data_start + int(entry[2])

    def array(self, name: str):
        """Zero-copy NumPy view of one column (read-only, backed by
        the mapped pages).  NumPy-only; list backends use the
        ``ints``/``bools``/``blob`` hydrators."""
        dtype = self._columns[name][0]
        count, start = self._locate(name, dtype)
        kind = np.dtype("<i8") if dtype == "i8" else np.bool_
        return np.frombuffer(self._buffer, dtype=kind, count=count,
                             offset=start)

    def ints(self, name: str) -> List[int]:
        """One ``i8`` column as a plain list of Python ints."""
        count, start = self._locate(name, "i8")
        if np is not None:
            return np.frombuffer(self._buffer, dtype=np.dtype("<i8"),
                                 count=count, offset=start).tolist()
        data = array("q")
        data.frombytes(bytes(self._buffer[start:start + count * 8]))
        if sys.byteorder != "little":  # pragma: no cover
            data.byteswap()
        return data.tolist()

    def bools(self, name: str) -> List[bool]:
        """One ``u1`` column as a plain list of Python bools."""
        count, start = self._locate(name, "u1")
        if np is not None:
            return np.frombuffer(self._buffer, dtype=np.bool_,
                                 count=count, offset=start).tolist()
        return [byte == 1
                for byte in bytes(self._buffer[start:start + count])]

    def blob(self, name: str) -> bytes:
        """One ``u1`` column as raw bytes."""
        count, start = self._locate(name, "u1")
        return bytes(self._buffer[start:start + count])


# ---------------------------------------------------------------------
# The plane
# ---------------------------------------------------------------------

#: (path, size, mtime_ns) -> verified checksum; per-process, inherited
#: by forked workers, keyed on stat identity so a replaced file always
#: re-verifies.
_VERIFIED: Dict[Tuple[str, int, int], str] = {}


def _reset_verified() -> None:
    """Drop the verification memo (tests)."""
    _VERIFIED.clear()


class ArtifactPlane:
    """One artifact-plane root under a cache directory."""

    def __init__(self, cache_root: str):
        self.cache_root = os.path.abspath(cache_root)
        self.root = os.path.join(self.cache_root, PLANE_DIR)
        #: robustness tallies for this handle (see also the obs
        #: counters ``repro_artifact_*_total``)
        self.counters: Dict[str, int] = {
            "attach_hits": 0, "attach_misses": 0, "stores": 0,
            "store_errors": 0, "quarantined": 0,
        }

    @property
    def quarantine_root(self) -> str:
        return os.path.join(self.root, QUARANTINE_DIR)

    def entry_path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], key + ".cols")

    # -- attach -------------------------------------------------------

    def attach(self, key: str,
               expected_checksum: Optional[str] = None
               ) -> Optional[ColumnBundle]:
        """Open, parse, and verify one bundle by key; ``None`` on any
        failure (missing file, corrupt header/bounds/checksum — which
        also quarantines — or a checksum other than expected)."""
        return self._attach_path(self.entry_path(key),
                                 expected_checksum)

    def attach_handle(self, handle: ArtifactHandle
                      ) -> Optional[ColumnBundle]:
        """Attach the bundle a worker shipped as a handle, insisting
        on the worker-observed checksum."""
        return self._attach_path(handle.path, handle.checksum)

    def _attach_path(self, path: str,
                     expected: Optional[str]) -> Optional[ColumnBundle]:
        try:
            if faults.should_fire("artifact.read.ioerror"):
                raise faults.InjectedIOError(
                    "injected artifact read fault: %s"
                    % os.path.basename(path))
            stream = open(path, "rb")
        except OSError:
            return self._miss()
        try:
            try:
                mapped = mmap.mmap(stream.fileno(), 0,
                                   access=mmap.ACCESS_READ)
            except (OSError, ValueError):  # ValueError: empty file
                return self._miss()
        finally:
            stream.close()
        buffer = mapped
        if faults.should_fire("artifact.read.truncated"):
            buffer = bytes(mapped[:max(len(mapped) // 2, len(MAGIC))])
        elif faults.should_fire("artifact.read.garbage"):
            buffer = b"\x00injected-garbage\x00" + bytes(mapped[:64])
        faulted = buffer is not mapped
        try:
            bundle = ColumnBundle.parse(path, buffer)
            bundle._mapped = mapped
            if not self._checksum_ok(path, bundle,
                                     allow_memo=not faulted):
                raise CorruptArtifact("checksum mismatch: %s" % path)
        except CorruptArtifact:
            self._close_map(mapped)
            self._quarantine(path)
            return self._miss()
        if expected is not None and bundle.checksum != expected:
            bundle.close()
            return self._miss()
        self.counters["attach_hits"] += 1
        self._count("repro_artifact_attach_total",
                    "artifact bundle attaches by outcome", result="hit")
        return bundle

    def _checksum_ok(self, path: str, bundle: ColumnBundle,
                     allow_memo: bool) -> bool:
        token = None
        try:
            stat = os.stat(path)
            token = (path, stat.st_size, stat.st_mtime_ns)
        except OSError:
            pass
        if allow_memo and token is not None \
                and _VERIFIED.get(token) == bundle.checksum:
            return True
        if not bundle.verify():
            return False
        if token is not None:
            _VERIFIED[token] = bundle.checksum
        return True

    def _miss(self) -> None:
        self.counters["attach_misses"] += 1
        self._count("repro_artifact_attach_total",
                    "artifact bundle attaches by outcome",
                    result="miss")
        return None

    @staticmethod
    def _close_map(mapped) -> None:
        try:
            mapped.close()
        except (BufferError, OSError):
            pass

    # -- store --------------------------------------------------------

    def store(self, key: str, kind: str, n: int,
              columns: Sequence[Tuple[str, str, bytes]],
              meta: Optional[Dict[str, object]] = None
              ) -> Optional[ArtifactHandle]:
        """Atomically persist one bundle.  Best-effort like
        :meth:`CacheDir.store`: any failure is swallowed and counted,
        and ``None`` comes back instead of a handle."""
        path = self.entry_path(key)
        try:
            blob = encode_bundle(kind, n, columns, meta)
            directory = os.path.dirname(path)
            os.makedirs(directory, exist_ok=True)
            if faults.should_fire("artifact.write.ioerror"):
                raise faults.InjectedIOError(
                    "injected artifact write fault: %s" % key[:12])
            fd, temp_path = tempfile.mkstemp(dir=directory,
                                             suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as stream:
                    stream.write(blob)
                os.replace(temp_path, path)
            except BaseException:
                try:
                    os.unlink(temp_path)
                except OSError:
                    pass
                raise
        except Exception:
            self.counters["store_errors"] += 1
            self._count("repro_artifact_store_errors_total",
                        "swallowed artifact store failures")
            return None
        self.counters["stores"] += 1
        self._count("repro_artifact_stores_total",
                    "artifact bundles stored")
        checksum = blob[len(MAGIC):len(MAGIC) + 64].decode("ascii")
        return ArtifactHandle(key=key, kind=kind, path=path,
                              checksum=checksum, n=int(n))

    # -- quarantine / telemetry ---------------------------------------

    def _quarantine(self, path: str) -> None:
        try:
            os.makedirs(self.quarantine_root, exist_ok=True)
            os.replace(path, os.path.join(self.quarantine_root,
                                          os.path.basename(path)))
        except OSError:
            try:
                os.unlink(path)
            except OSError:
                pass
        self.counters["quarantined"] += 1
        self._count("repro_artifact_quarantined_total",
                    "artifact bundles quarantined as corrupt")

    @staticmethod
    def _count(name: str, help_text: str, **labels: str) -> None:
        from repro import obs

        obs.metrics().counter(name, help_text, **labels).inc()

    def stats(self) -> Dict[str, int]:
        """``{"entries": n, "bytes": b}`` over the live plane files."""
        entries = 0
        size = 0
        if not os.path.isdir(self.root):
            return {"entries": 0, "bytes": 0}
        for dirpath, dirnames, filenames in os.walk(self.root):
            dirnames[:] = [name for name in dirnames
                           if not name.startswith("_")]
            for filename in filenames:
                if not filename.endswith(".cols"):
                    continue
                entries += 1
                try:
                    size += os.path.getsize(
                        os.path.join(dirpath, filename))
                except OSError:
                    pass
        return {"entries": entries, "bytes": size}


# ---------------------------------------------------------------------
# Bundle kinds: trace and analysis
# ---------------------------------------------------------------------

_TRACE_COLUMNS = ("pcs", "taken", "addrs", "sidx", "out")
_ANALYSIS_COLUMNS = ("dead", "direct", "distances",
                     "total_keys", "total_vals",
                     "deads_keys", "deads_vals")


def is_trace_bundle(bundle: ColumnBundle,
                    n: Optional[int] = None) -> bool:
    """Whether *bundle* is a complete trace bundle (of length *n*)."""
    if bundle.kind != "trace":
        return False
    if n is not None and bundle.n != n:
        return False
    return all(bundle.has(name) for name in _TRACE_COLUMNS)


def is_analysis_bundle(bundle: ColumnBundle, n: int) -> bool:
    """Whether *bundle* is a complete analysis bundle for an
    *n*-instruction trace."""
    if bundle.kind != "analysis" or bundle.n != n:
        return False
    if not isinstance(bundle.meta.get("counts"), dict):
        return False
    return all(bundle.has(name) for name in _ANALYSIS_COLUMNS)


def store_trace_bundle(plane: ArtifactPlane, key: str, program,
                       pcs: Sequence[int], taken: Sequence[bool],
                       addrs: Sequence[int],
                       output: Sequence[object]
                       ) -> Optional[ArtifactHandle]:
    """Persist one trace's dynamic columns plus every derived kernel
    column the columnar backend can precompute (static indices, word
    addresses, the sorted read/write-successor key indexes, and the
    front end's control/cond-prefix streams)."""
    from repro.analysis.statics import StaticTable
    from repro.emulator.trace import Trace
    from repro.kernels import columnar

    trace = Trace(program)
    trace.pcs = list(pcs)
    trace.taken = list(taken)
    trace.addrs = list(addrs)
    columns: List[Tuple[str, str, bytes]] = [
        ("pcs", "i8", i8_bytes(trace.pcs)),
        ("taken", "u1", u1_bytes(trace.taken)),
        ("addrs", "i8", i8_bytes(trace.addrs)),
        ("sidx", "i8", i8_bytes(trace.static_indices())),
        ("out", "u1", pickle.dumps(list(output), protocol=2)),
    ]
    columns.extend(columnar.plane_columns(trace, StaticTable(program)))
    return plane.store(key, "trace", len(trace.pcs), columns)


def unpack_output(bundle: ColumnBundle) -> List[object]:
    """The emulator output list stored in a trace bundle."""
    return pickle.loads(bundle.blob("out"))


def store_analysis_bundle(plane: ArtifactPlane, key: str, n: int,
                          dead_blob: bytes, direct_blob: bytes,
                          counts: Dict[str, int],
                          fused_doc: Dict[str, object]
                          ) -> Optional[ArtifactHandle]:
    """Persist one analysis stage result (the deadness label blobs
    plus the fused pass's kill/counter columns) as a bundle.

    ``by_provenance`` is stored as one column per tag (``prov:<i>``,
    tag names in the TOC meta) so the canonical per-tag victim order
    reconstructs exactly; the counter dicts become parallel key/value
    columns in their canonical sorted-key order.
    """
    by_provenance: Dict[str, List[int]] = fused_doc["by_provenance"]
    totals: Dict[int, int] = fused_doc["totals"]
    deads: Dict[int, int] = fused_doc["deads"]
    names = list(by_provenance)
    columns: List[Tuple[str, str, bytes]] = [
        ("dead", "u1", u1_bytes(dead_blob)),
        ("direct", "u1", u1_bytes(direct_blob)),
        ("distances", "i8", i8_bytes(fused_doc["distances"])),
        ("total_keys", "i8", i8_bytes(list(totals.keys()))),
        ("total_vals", "i8", i8_bytes(list(totals.values()))),
        ("deads_keys", "i8", i8_bytes(list(deads.keys()))),
        ("deads_vals", "i8", i8_bytes(list(deads.values()))),
    ]
    for code, name in enumerate(names):
        columns.append(("prov:%d" % code, "i8",
                        i8_bytes(by_provenance[name])))
    meta = {"counts": {key_: int(value)
                       for key_, value in counts.items()},
            "unkilled": int(fused_doc["unkilled"]),
            "prov_names": names}
    return plane.store(key, "analysis", n, columns, meta)


def counts_from_bundle(bundle: ColumnBundle) -> Dict[str, int]:
    """The analysis summary counters stored in a bundle's meta."""
    return {key: int(value)
            for key, value in bundle.meta.get("counts", {}).items()}


def fused_doc_from_bundle(bundle: ColumnBundle) -> Dict[str, object]:
    """Rebuild the fused-pass document (the exact dict
    ``engine._fused_to_doc`` produces) from an analysis bundle —
    pickle-identical to the in-memory derivation by construction."""
    names = list(bundle.meta.get("prov_names") or [])
    return {
        "distances": bundle.ints("distances"),
        "unkilled": int(bundle.meta.get("unkilled", 0)),
        "by_provenance": {name: bundle.ints("prov:%d" % code)
                          for code, name in enumerate(names)},
        "totals": dict(zip(bundle.ints("total_keys"),
                           bundle.ints("total_vals"))),
        "deads": dict(zip(bundle.ints("deads_keys"),
                          bundle.ints("deads_vals"))),
    }
