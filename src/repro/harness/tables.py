"""Minimal fixed-width text table rendering for experiment output."""

from __future__ import annotations

from typing import List, Sequence


class Table:
    """A text table with a title, a header row, and value rows."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ValueError("expected %d values, got %d" %
                             (len(self.columns), len(values)))
        self.rows.append([_format(value) for value in values])

    def render(self) -> str:
        widths = [len(column) for column in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title]
        lines.append("  ".join(column.ljust(widths[index])
                               for index, column in
                               enumerate(self.columns)))
        lines.append("  ".join("-" * width for width in widths))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[index])
                                   for index, cell in enumerate(row)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _format(value: object) -> str:
    if isinstance(value, float):
        return "%.2f" % value
    return str(value)


def percent(value: float) -> str:
    """Render a ratio as a percentage string."""
    return "%.1f%%" % (100.0 * value)


def signed_percent(value: float) -> str:
    """Render a ratio as a signed percentage string."""
    return "%+.1f%%" % (100.0 * value)
