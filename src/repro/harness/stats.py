"""Statistics for run-table results: intervals and factor effects.

The run-table layer (:mod:`repro.harness.runtable`) measures every
cell of a factor grid, possibly repeated under several seeds; this
module turns those per-cell metric samples into the three statistical
views the muBench-style analysis pipeline produces:

* **summaries** — sample mean, sample standard deviation, and a
  Student-t confidence interval per metric (:func:`summarize`);
* **main effects** — for each factor, the per-level mean and its
  deviation from the grand mean (:func:`effects`);
* **pairwise effect sizes** — Cohen's d (pooled standard deviation)
  between every pair of levels of a factor (:func:`pairwise`).

Everything is pure stdlib and written to degrade gracefully at the
edges a deterministic simulator actually produces: a single sample
(``n == 1``) yields a zero-width interval, a zero-variance population
yields zero-width intervals and an undefined (``None``) effect size,
and empty inputs raise ``ValueError`` rather than dividing by zero.
The t critical values are the standard two-sided tables for 90%, 95%,
and 99% confidence; between tabulated degrees of freedom the value for
the nearest *smaller* df is used (wider interval — the conservative
choice).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Effect",
    "PairEffect",
    "Summary",
    "cohens_d",
    "effects",
    "mean",
    "pairwise",
    "sample_stdev",
    "summarize",
    "t_critical",
]


# Two-sided Student-t critical values by confidence level and degrees
# of freedom.  df keys are ascending; lookups use the largest
# tabulated df <= the actual df (t shrinks with df, so rounding df
# down widens the interval slightly rather than narrowing it).
_T_TABLE: Dict[float, Tuple[Tuple[int, float], ...]] = {
    0.90: ((1, 6.314), (2, 2.920), (3, 2.353), (4, 2.132), (5, 2.015),
           (6, 1.943), (7, 1.895), (8, 1.860), (9, 1.833), (10, 1.812),
           (11, 1.796), (12, 1.782), (13, 1.771), (14, 1.761),
           (15, 1.753), (16, 1.746), (17, 1.740), (18, 1.734),
           (19, 1.729), (20, 1.725), (21, 1.721), (22, 1.717),
           (23, 1.714), (24, 1.711), (25, 1.708), (26, 1.706),
           (27, 1.703), (28, 1.701), (29, 1.699), (30, 1.697),
           (40, 1.684), (60, 1.671), (120, 1.658)),
    0.95: ((1, 12.706), (2, 4.303), (3, 3.182), (4, 2.776), (5, 2.571),
           (6, 2.447), (7, 2.365), (8, 2.306), (9, 2.262), (10, 2.228),
           (11, 2.201), (12, 2.179), (13, 2.160), (14, 2.145),
           (15, 2.131), (16, 2.120), (17, 2.110), (18, 2.101),
           (19, 2.093), (20, 2.086), (21, 2.080), (22, 2.074),
           (23, 2.069), (24, 2.064), (25, 2.060), (26, 2.056),
           (27, 2.052), (28, 2.048), (29, 2.045), (30, 2.042),
           (40, 2.021), (60, 2.000), (120, 1.980)),
    0.99: ((1, 63.657), (2, 9.925), (3, 5.841), (4, 4.604), (5, 4.032),
           (6, 3.707), (7, 3.499), (8, 3.355), (9, 3.250), (10, 3.169),
           (11, 3.106), (12, 3.055), (13, 3.012), (14, 2.977),
           (15, 2.947), (16, 2.921), (17, 2.898), (18, 2.878),
           (19, 2.861), (20, 2.845), (21, 2.831), (22, 2.819),
           (23, 2.807), (24, 2.797), (25, 2.787), (26, 2.779),
           (27, 2.771), (28, 2.763), (29, 2.756), (30, 2.750),
           (40, 2.704), (60, 2.660), (120, 2.617)),
}

#: Large-df (normal) critical values per confidence level.
_Z_VALUES = {0.90: 1.645, 0.95: 1.960, 0.99: 2.576}

CONFIDENCE_LEVELS = tuple(sorted(_Z_VALUES))


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises ``ValueError`` on an empty sequence."""
    if not values:
        raise ValueError("mean of an empty sequence")
    return math.fsum(values) / len(values)


def sample_stdev(values: Sequence[float]) -> float:
    """Sample (n-1) standard deviation; 0.0 for fewer than 2 values."""
    n = len(values)
    if n < 2:
        return 0.0
    center = mean(values)
    variance = math.fsum((value - center) ** 2
                         for value in values) / (n - 1)
    # fsum of squares cannot go negative, but guard the sqrt anyway.
    return math.sqrt(max(variance, 0.0))


def t_critical(df: int, confidence: float = 0.95) -> float:
    """Two-sided Student-t critical value for *df* degrees of freedom.

    *confidence* must be one of :data:`CONFIDENCE_LEVELS`.
    """
    table = _T_TABLE.get(confidence)
    if table is None:
        raise ValueError(
            "confidence must be one of %s, got %r" %
            (", ".join("%.2f" % c for c in CONFIDENCE_LEVELS),
             confidence))
    if df < 1:
        raise ValueError("degrees of freedom must be >= 1, got %d" % df)
    chosen = None
    for tab_df, value in table:
        if tab_df <= df:
            chosen = value
        else:
            break
    if df > table[-1][0]:
        return _Z_VALUES[confidence]
    assert chosen is not None  # df >= 1 always matches the first row
    return chosen


@dataclass(frozen=True)
class Summary:
    """Sample summary with a Student-t confidence interval."""

    n: int
    mean: float
    stdev: float
    ci_low: float
    ci_high: float
    minimum: float
    maximum: float
    confidence: float = 0.95

    @property
    def half_width(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0

    def to_dict(self) -> Dict[str, float]:
        return {"n": self.n, "mean": self.mean, "stdev": self.stdev,
                "ci_low": self.ci_low, "ci_high": self.ci_high,
                "min": self.minimum, "max": self.maximum,
                "confidence": self.confidence}


def summarize(values: Sequence[float],
              confidence: float = 0.95) -> Summary:
    """Mean, stdev, and t-interval for one metric's samples.

    With ``n == 1`` (or zero variance) the interval degenerates to a
    zero-width interval at the mean — no division by zero, no NaN.
    """
    if not values:
        raise ValueError("cannot summarize an empty sample")
    center = mean(values)
    spread = sample_stdev(values)
    n = len(values)
    if n < 2 or spread == 0.0:
        half = 0.0
    else:
        half = t_critical(n - 1, confidence) * spread / math.sqrt(n)
    return Summary(n=n, mean=center, stdev=spread,
                   ci_low=center - half, ci_high=center + half,
                   minimum=min(values), maximum=max(values),
                   confidence=confidence)


@dataclass(frozen=True)
class Effect:
    """One factor level's main effect on a metric."""

    level: str
    n: int
    mean: float
    #: deviation of the level mean from the grand mean
    effect: float


def effects(groups: Mapping[str, Sequence[float]]) -> List[Effect]:
    """Per-level main effects: level mean minus the pooled grand mean.

    *groups* maps level label -> that level's metric samples (all
    cells sharing the level, across every other factor and every
    repetition).  Levels appear in mapping order; empty groups are
    skipped.
    """
    pooled: List[float] = []
    for values in groups.values():
        pooled.extend(values)
    if not pooled:
        raise ValueError("no samples in any level")
    grand = mean(pooled)
    out: List[Effect] = []
    for level, values in groups.items():
        if not values:
            continue
        center = mean(values)
        out.append(Effect(level=level, n=len(values), mean=center,
                          effect=center - grand))
    return out


def cohens_d(a: Sequence[float],
             b: Sequence[float]) -> Optional[float]:
    """Cohen's d between two samples (pooled standard deviation).

    ``None`` when the pooled deviation is zero (identical constants —
    an effect size is undefined, not infinite) or either sample is
    empty.
    """
    if not a or not b:
        return None
    sd_a, sd_b = sample_stdev(a), sample_stdev(b)
    weight = (len(a) - 1) + (len(b) - 1)
    if weight <= 0:
        pooled = 0.0
    else:
        pooled = math.sqrt(((len(a) - 1) * sd_a ** 2 +
                            (len(b) - 1) * sd_b ** 2) / weight)
    if pooled == 0.0:
        return None
    return (mean(a) - mean(b)) / pooled


@dataclass(frozen=True)
class PairEffect:
    """Effect size between two levels of one factor."""

    level_a: str
    level_b: str
    mean_a: float
    mean_b: float
    difference: float
    #: Cohen's d; ``None`` when undefined (zero pooled variance)
    d: Optional[float]


def pairwise(groups: Mapping[str, Sequence[float]]) -> List[PairEffect]:
    """Pairwise mean differences and Cohen's d across factor levels,
    in mapping order (a before b)."""
    labels = [label for label, values in groups.items() if values]
    out: List[PairEffect] = []
    for i, label_a in enumerate(labels):
        for label_b in labels[i + 1:]:
            a, b = groups[label_a], groups[label_b]
            mean_a, mean_b = mean(a), mean(b)
            out.append(PairEffect(
                level_a=label_a, level_b=label_b,
                mean_a=mean_a, mean_b=mean_b,
                difference=mean_a - mean_b,
                d=cohens_d(a, b)))
    return out
