"""Structured run metadata: one JSON document per harness invocation.

Every ``repro-harness`` run (and any embedding that opts in) records a
machine-readable provenance document under ``<cache>/runs/``::

    {
      "schema": 1,
      "run_id": "20260805-141502-1234",
      "started_at": "2026-08-05T14:15:02",
      "argv": ["F7", "F8", "--jobs", "4"],
      "host": {"platform": "...", "python": "3.11.x", "cpu_count": 8},
      "engine": {"jobs": 4, "cache": true, "cache_dir": "..."},
      "experiments": [
        {"id": "F7", "wall_s": 3.21, "instructions": 440123,
         "stages": {"compile": {"hits": 10, "misses": 0, "seconds": 0.0},
                    "trace":   {...}, "analysis": {...},
                    "paths": {...}, "timing": {...}}},
        ...
      ],
      "totals": {"wall_s": ..., "stages": {...}, "instructions": ...},
      "robustness": {"retries": 0, "pool_faults": 0,
                     "degraded_to_serial": false, "failed_cells": [],
                     "faults_injected": {}, "cache": {...}}
    }

``wall_s`` is per-experiment wall time; ``stages`` are the engine's
per-stage cache hit/miss counts and compute seconds *attributed to that
experiment* (snapshot deltas), so a hot-cache rerun shows zero compile
and trace misses.  ``repro-harness runs`` summarizes these documents.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

SCHEMA = 1


def host_info() -> Dict[str, object]:
    """Enough host detail to interpret wall times later."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 1,
    }


def _new_run_id() -> str:
    return "%s-%d" % (time.strftime("%Y%m%d-%H%M%S"), os.getpid())


@dataclass
class RunRecorder:
    """Accumulates per-experiment records for one harness invocation."""

    argv: List[str] = field(default_factory=list)
    engine_info: Dict[str, object] = field(default_factory=dict)
    run_id: str = field(default_factory=_new_run_id)
    started_at: str = field(
        default_factory=lambda: time.strftime("%Y-%m-%dT%H:%M:%S"))
    experiments: List[Dict[str, object]] = field(default_factory=list)
    #: declarative run-table executions (``repro-harness table run``):
    #: one record per table with its cell count, repetitions, and
    #: measurement wall time
    tables: List[Dict[str, object]] = field(default_factory=list)
    #: observability summary for runs executed with telemetry on:
    #: ``{"dir": ..., "spans": {name: {count, seconds}},
    #: "artifacts": [...]}`` — see ``repro.obs`` and the ``obs`` CLI
    obs: Optional[Dict[str, object]] = None
    #: robustness summary (``Engine.robustness()``): retries, pool
    #: faults, serial degradation, cache store-error/quarantine
    #: counts, injected faults, and cells dropped in partial mode
    robustness: Optional[Dict[str, object]] = None
    #: pointer into the persistent run-history log
    #: (``repro.obs.history``): ``{"path": ..., "checksum": ...}``
    history: Optional[Dict[str, object]] = None

    def record(self, experiment_id: str, wall_s: float,
               stage_delta: Dict[str, Dict[str, object]],
               instructions: int) -> None:
        self.experiments.append({
            "id": experiment_id,
            "wall_s": round(wall_s, 3),
            "instructions": instructions,
            "stages": stage_delta,
        })

    def record_table(self, table_id: str, cells: int,
                     repetitions: int, seconds: float) -> None:
        self.tables.append({
            "id": table_id,
            "cells": cells,
            "repetitions": repetitions,
            "seconds": round(seconds, 3),
        })

    def document(self) -> Dict[str, object]:
        totals_stages: Dict[str, Dict[str, float]] = {}
        for record in self.experiments:
            for stage, counts in record["stages"].items():
                bucket = totals_stages.setdefault(
                    stage, {"hits": 0, "misses": 0, "seconds": 0.0})
                bucket["hits"] += counts.get("hits", 0)
                bucket["misses"] += counts.get("misses", 0)
                bucket["seconds"] = round(
                    bucket["seconds"] + counts.get("seconds", 0.0), 3)
        document = {
            "schema": SCHEMA,
            "run_id": self.run_id,
            "started_at": self.started_at,
            "argv": list(self.argv),
            "host": host_info(),
            "engine": dict(self.engine_info),
            "experiments": list(self.experiments),
            "totals": {
                "wall_s": round(sum(r["wall_s"]
                                    for r in self.experiments), 3),
                "instructions": sum(r["instructions"]
                                    for r in self.experiments),
                "stages": totals_stages,
            },
        }
        if self.tables:
            document["run_tables"] = list(self.tables)
        if self.obs:
            document["obs"] = dict(self.obs)
        if self.robustness is not None:
            document["robustness"] = dict(self.robustness)
        if self.history is not None:
            document["history"] = dict(self.history)
        return document

    def write(self, runs_root: str) -> str:
        """Persist the document; returns the path written."""
        os.makedirs(runs_root, exist_ok=True)
        path = os.path.join(runs_root, "run-%s.json" % self.run_id)
        with open(path, "w") as stream:
            json.dump(self.document(), stream, indent=2, sort_keys=True)
            stream.write("\n")
        return path


def load_runs(runs_root: str) -> List[Dict[str, object]]:
    """All parseable run documents, oldest first."""
    if not os.path.isdir(runs_root):
        return []
    documents = []
    for name in sorted(os.listdir(runs_root)):
        if not (name.startswith("run-") and name.endswith(".json")):
            continue
        try:
            with open(os.path.join(runs_root, name)) as stream:
                documents.append(json.load(stream))
        except (OSError, ValueError):
            continue
    documents.sort(key=lambda doc: doc.get("started_at", ""))
    return documents


def summarize_runs(documents: List[Dict[str, object]],
                   last: Optional[int] = None) -> str:
    """A human-readable table over run documents (newest last)."""
    if last is not None:
        documents = documents[-last:]
    if not documents:
        return "no recorded runs"
    lines = ["%-22s %-19s %5s %8s %9s %9s %s" %
             ("run id", "started", "exps", "wall(s)",
              "hit/miss", "instrs", "experiments")]
    for doc in documents:
        totals = doc.get("totals", {})
        stages = totals.get("stages", {})
        hits = sum(c.get("hits", 0) for c in stages.values())
        misses = sum(c.get("misses", 0) for c in stages.values())
        ids = [r.get("id", "?") for r in doc.get("experiments", [])]
        shown = ",".join(ids[:8]) + ("..." if len(ids) > 8 else "")
        lines.append("%-22s %-19s %5d %8.1f %9s %9d %s" % (
            doc.get("run_id", "?"), doc.get("started_at", "?"),
            len(ids), totals.get("wall_s", 0.0),
            "%d/%d" % (hits, misses),
            totals.get("instructions", 0), shown))
    return "\n".join(lines)
