"""Fault injection for the harness robustness contract.

The engine and cache promise to survive adverse conditions — corrupt
or unreadable cache entries, dying or hanging pool workers, artifacts
that refuse to pickle — without changing experiment results.  This
module makes those conditions *reproducible*: a small registry of
named **fault points** that production code consults at the exact
places where the real failures would strike, plus a count-limited
plan describing which points fire and how often.

Fault points (:data:`FAULT_POINTS`):

``cache.read.ioerror``
    :meth:`CacheDir.load` fails to open the entry (injected
    :class:`InjectedIOError`) — behaves like an unreadable disk.
``cache.read.garbage``
    the bytes read back are garbage — exercises checksum verification
    and quarantine.
``cache.write.ioerror``
    :meth:`CacheDir.store` hits an IO error mid-write.
``cache.write.unpicklable``
    the artifact handed to ``store`` cannot be pickled.
``worker.crash``
    a cell computation raises :class:`WorkerCrash` — stands in for a
    worker process dying mid-cell.
``worker.hang``
    a *pool worker* sleeps past the cell timeout (never fires in the
    parent process, so the serial retry completes).
``artifact.unpicklable``
    a *pool worker* returns a payload the result pipe cannot pickle.
``artifact.read.ioerror``
    :meth:`ArtifactPlane.attach` fails to open/map the bundle file.
``artifact.read.garbage``
    the mapped bundle bytes are garbage — exercises the plane's header
    verification and quarantine.
``artifact.read.truncated``
    the bundle file is cut mid-column (a writer died, a disk filled) —
    exercises the bounds/checksum checks.
``artifact.write.ioerror``
    :meth:`ArtifactPlane.store` hits an IO error mid-write.

Plans come from the ``REPRO_FAULTS`` environment variable or from
:func:`install_plan` (tests).  Syntax: comma-separated
``point[:times]`` entries; *times* is how many calls fire (default 1,
``*`` = every call)::

    REPRO_FAULTS="cache.read.garbage:3,worker.crash" repro-harness F1

Firing is deterministic — the first *times* arrivals at a point fire,
later ones pass through — so a faulted run is exactly reproducible.
Worker-level points (``worker.*``, ``artifact.unpicklable``) are
drawn by the *parent* at dispatch time (:func:`draw_cell_faults`) and
shipped to workers as task arguments, so their budgets are spent
exactly once process-wide; cache-level points (``cache.*`` and the
``artifact.read.*``/``artifact.write.*`` plane points) fire wherever
the load/store happens (a forked pool worker decrements its own copy
of the plan).  Every
fired fault is
tallied (:func:`fired_counts`) and counted in the obs metrics registry
(``repro_faults_injected_total``) when telemetry is on, which is how
``obs report`` proves a robustness run actually injected something.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

__all__ = [
    "FAULT_POINTS",
    "FaultPlan",
    "InjectedIOError",
    "WorkerCrash",
    "active",
    "fired_counts",
    "hang_seconds",
    "install_plan",
    "plan_from_env",
    "reset_faults",
    "should_fire",
]

#: Every registered fault point and what firing it simulates.
FAULT_POINTS: Dict[str, str] = {
    "cache.read.ioerror": "cache entry unreadable (OSError on open)",
    "cache.read.garbage": "cache entry bytes corrupted on read",
    "cache.write.ioerror": "cache store hits an IO error mid-write",
    "cache.write.unpicklable": "artifact handed to store cannot pickle",
    "worker.crash": "cell computation dies mid-cell",
    "worker.hang": "pool worker sleeps past the cell timeout",
    "artifact.unpicklable": "pool worker returns an unpicklable payload",
    "artifact.read.ioerror": "artifact bundle unreadable (OSError on open)",
    "artifact.read.garbage": "artifact bundle bytes corrupted on read",
    "artifact.read.truncated": "artifact bundle truncated mid-file",
    "artifact.write.ioerror": "artifact store hits an IO error mid-write",
}

#: ``times`` value meaning "fire on every call".
UNLIMITED = -1


class WorkerCrash(RuntimeError):
    """Injected stand-in for a worker process dying mid-cell."""


class InjectedIOError(OSError):
    """Injected stand-in for a disk-level IO failure."""


class FaultPlan:
    """Which fault points fire and how many times each."""

    def __init__(self, rules: Optional[Dict[str, int]] = None):
        for point in (rules or {}):
            if point not in FAULT_POINTS:
                raise ValueError(
                    "unknown fault point %r (registered: %s)"
                    % (point, ", ".join(sorted(FAULT_POINTS))))
        #: point -> remaining fire count (:data:`UNLIMITED` = forever)
        self.remaining: Dict[str, int] = dict(rules or {})

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse ``point[:times][,point[:times]...]`` (times default 1,
        ``*`` = unlimited).  Raises ``ValueError`` on unknown points or
        malformed counts."""
        rules: Dict[str, int] = {}
        for chunk in spec.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            point, _, times_text = chunk.partition(":")
            point = point.strip()
            times_text = times_text.strip()
            if not times_text:
                times = 1
            elif times_text == "*":
                times = UNLIMITED
            else:
                try:
                    times = int(times_text)
                except ValueError:
                    raise ValueError(
                        "malformed fault count %r in REPRO_FAULTS "
                        "entry %r (want an integer or '*')"
                        % (times_text, chunk))
                if times < 0:
                    raise ValueError(
                        "negative fault count in %r" % chunk)
            rules[point] = times
        return cls(rules)

    def __bool__(self) -> bool:
        return bool(self.remaining)


def plan_from_env() -> Optional[FaultPlan]:
    """The plan described by ``REPRO_FAULTS`` (None when unset/empty)."""
    spec = os.environ.get("REPRO_FAULTS", "")
    if not spec.strip():
        return None
    return FaultPlan.parse(spec)


# ---------------------------------------------------------------------
# Process-wide state
# ---------------------------------------------------------------------

_PLAN: Optional[FaultPlan] = None
_ENV_CONSULTED = False
_FIRED: Dict[str, int] = {}


def install_plan(plan: Optional[FaultPlan]) -> Optional[FaultPlan]:
    """Install *plan* process-wide (None disables injection).  Also
    suppresses the lazy ``REPRO_FAULTS`` read, so tests own the state
    after the first call."""
    global _PLAN, _ENV_CONSULTED
    _PLAN = plan
    _ENV_CONSULTED = True
    return plan


def reset_faults() -> None:
    """Disable injection and clear fired tallies (tests)."""
    install_plan(None)
    _FIRED.clear()


def _current_plan() -> Optional[FaultPlan]:
    global _PLAN, _ENV_CONSULTED
    if not _ENV_CONSULTED:
        _ENV_CONSULTED = True
        _PLAN = plan_from_env()
    return _PLAN


def active() -> bool:
    """Whether any fault point can still fire in this process."""
    plan = _current_plan()
    return bool(plan) and any(times != 0
                              for times in plan.remaining.values())


def should_fire(point: str) -> bool:
    """Consume one firing of *point* if the active plan allows it.

    The single hook production code calls; unknown points raise so a
    typo in an instrumentation site cannot silently never fire.
    """
    if point not in FAULT_POINTS:
        raise ValueError("unregistered fault point %r" % point)
    plan = _current_plan()
    if plan is None:
        return False
    remaining = plan.remaining.get(point, 0)
    if remaining == 0:
        return False
    if remaining != UNLIMITED:
        plan.remaining[point] = remaining - 1
    _FIRED[point] = _FIRED.get(point, 0) + 1
    _note_fired(point)
    return True


def fired_counts() -> Dict[str, int]:
    """Per-point tally of faults injected in this process."""
    return dict(_FIRED)


def draw_cell_faults(pool: bool) -> Tuple[str, ...]:
    """Consume the worker-level fault budgets for one cell dispatch.

    The *parent* draws before handing a cell to a worker and ships the
    drawn points as plain task arguments, so budgets are spent exactly
    once process-wide — a forked pool re-inheriting the plan can never
    re-fire an exhausted point.  Hangs and poisoned result payloads
    only make sense across a process boundary, so they are only drawn
    for pool dispatches.
    """
    if _current_plan() is None:
        return ()
    points = ["worker.crash"]
    if pool:
        points += ["worker.hang", "artifact.unpicklable"]
    return tuple(point for point in points if should_fire(point))


def hang_seconds() -> float:
    """How long an injected ``worker.hang`` sleeps
    (``REPRO_FAULT_HANG_S``, default 30 — comfortably past any test
    cell timeout while still bounded)."""
    try:
        return float(os.environ.get("REPRO_FAULT_HANG_S", "30"))
    except ValueError:
        return 30.0


def _note_fired(point: str) -> None:
    from repro import obs

    obs.metrics().counter(
        "repro_faults_injected_total", "injected faults by point",
        point=point).inc()
