"""repro: reproduction of Butts & Sohi, "Dynamic dead-instruction
detection and elimination" (ASPLOS 2002).

The package is organized bottom-up (see DESIGN.md):

* :mod:`repro.isa` — a 32-bit RISC ISA, assembler, and encoding;
* :mod:`repro.lang` — the Mini-C optimizing compiler whose speculative
  scheduler manufactures the paper's partially dead instructions;
* :mod:`repro.emulator` — the architectural emulator and trace capture;
* :mod:`repro.analysis` — exact dynamic deadness (ground truth) and the
  characterization statistics;
* :mod:`repro.predictors` — branch predictors and the paper's
  path-refined dead-instruction predictor;
* :mod:`repro.pipeline` — the out-of-order timing simulator with the
  dead-instruction elimination mechanism;
* :mod:`repro.workloads` — the nine-kernel benchmark suite;
* :mod:`repro.harness` — one experiment per figure/table of the paper.

Quickstart::

    from repro.workloads import get_workload
    from repro.analysis import analyze_deadness

    machine, trace = get_workload("sort").run()
    analysis = analyze_deadness(trace)
    print(analysis.summary())
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
