"""The ``batched`` backend: bulk column operations for the kernels.

Pure stdlib (no extension modules in the image), so "batched" means
pushing per-element work out of interpreted bytecode and into C-level
primitives:

* the per-static fact tables are **gathered** into per-dynamic columns
  once with ``map(list.__getitem__, sidx)``, so the sequential backward
  pass unpacks one tuple from a multi-column ``zip(reversed(...))``
  iterator instead of doing nine indexed lookups per instruction;
* per-static instance counters come from ``collections.Counter`` over
  the static-index column (``Counter(sidx)`` and
  ``Counter(compress(sidx, dead))``), never from a Python loop;
* the prediction stream is extracted with ``itertools.compress`` over
  gathered event masks.

The backward dataflow itself is inherently sequential (every label
depends on state mutated by younger instructions), so it stays a loop;
everything around it is batched.  Results are byte-identical to the
``python`` reference by the canonical-form rules in
:mod:`repro.kernels.base` — the property suite and
``tests/test_kernels.py`` enforce this on random programs and the real
workloads.
"""

from __future__ import annotations

from collections import Counter
from itertools import accumulate, chain, compress
from typing import Dict, List, Optional, Sequence

from repro.isa.program import TEXT_BASE
from repro.isa.registers import NUM_REGS
from repro.kernels.base import (
    DeadnessColumns,
    DecodedTrace,
    FrontendColumns,
    FusedColumns,
    KernelBackend,
    KillColumns,
    PredictionStream,
    StaticCounts,
    canonical_counts,
    canonical_kills,
)


def _gather(table: Sequence, sidx: Sequence[int]) -> List:
    """Per-dynamic column from a per-static table (C-level gather)."""
    return list(map(table.__getitem__, sidx))


class BatchedBackend(KernelBackend):
    """Bulk-operation implementation (stdlib ``map``/``zip``/``Counter``)."""

    name = "batched"

    def _static_indices(self, trace) -> List[int]:
        base = TEXT_BASE
        if base:
            return [(pc - base) >> 2 for pc in trace.pcs]
        return [pc >> 2 for pc in trace.pcs]

    def _fused(self, decoded: DecodedTrace,
               track_stores: bool) -> FusedColumns:
        return _backward_pass(decoded, track_stores, fuse=True)

    def _deadness(self, decoded: DecodedTrace,
                  track_stores: bool) -> DeadnessColumns:
        return _backward_pass(decoded, track_stores, fuse=False).deadness

    def _static_counts(self, decoded: DecodedTrace,
                       dead: Sequence[bool]) -> StaticCounts:
        sidx = decoded.sidx
        totals = Counter(sidx)
        deads = Counter(compress(sidx, dead))
        return canonical_counts(totals, deads)

    def _kill_distances(self, decoded: DecodedTrace,
                        dead: Sequence[bool]) -> KillColumns:
        sidx = decoded.sidx
        provenance = decoded.statics.provenance
        dest_col = _gather(decoded.statics.dest, sidx)

        pending: List[Optional[int]] = [None] * NUM_REGS
        pairs = []
        i = -1
        for dest, dead_i in zip(dest_col, dead):
            i += 1
            if not dest:
                continue
            previous = pending[dest]
            if previous is not None:
                pairs.append((previous, i - previous,
                              provenance[sidx[previous]] or "original"))
            pending[dest] = i if dead_i else None
        unkilled = sum(1 for entry in pending if entry is not None)
        pairs.sort(key=lambda pair: pair[0])
        return canonical_kills(pairs, unkilled)

    def _prediction_stream(self, decoded: DecodedTrace,
                           dead: Sequence[bool]) -> PredictionStream:
        trace = decoded.trace
        sidx = decoded.sidx
        statics = decoded.statics
        eligible = statics.eligible
        is_cond = statics.is_cond_branch
        # Per-static event masks (an eligible conditional branch cannot
        # exist, but the evaluation walk's if/elif gives eligibility
        # priority — mirror that exactly), gathered to per-dynamic.
        branch_event = [cond and not elig
                       for elig, cond in zip(eligible, is_cond)]
        e_col = _gather(eligible, sidx)
        b_col = _gather(branch_event, sidx)

        n = len(sidx)
        return PredictionStream(
            eligible_index=list(compress(range(n), e_col)),
            eligible_pc=list(compress(trace.pcs, e_col)),
            eligible_dead=list(compress(dead, e_col)),
            branch_index=list(compress(range(n), b_col)),
            branch_taken=list(compress(trace.taken, b_col)))

    def _frontend(self, decoded: DecodedTrace,
                  fu: Sequence[int]) -> FrontendColumns:
        sidx = decoded.sidx
        statics = decoded.statics
        # An attached artifact bundle (harness/artifacts.py) already
        # holds the two derived event streams in representable form
        # (plain int64 columns that hydrate to exact int lists); the
        # per-dynamic gathers stay local — they are single C-level
        # passes over the mapped/static tables either way.
        control_index = cond_prefix = None
        bundle = getattr(decoded.trace, "artifact_bundle", None)
        if bundle is not None:
            try:
                if bundle.n == len(sidx) \
                        and bundle.has("control_index") \
                        and bundle.has("cond_prefix"):
                    control_index = bundle.ints("control_index")
                    cond_prefix = bundle.ints("cond_prefix")
            except Exception:
                control_index = cond_prefix = None
        if control_index is None or cond_prefix is None:
            control_col = _gather(statics.is_branch, sidx)
            cond_col = _gather(statics.is_cond_branch, sidx)
            control_index = list(compress(range(len(sidx)),
                                          control_col))
            cond_prefix = list(accumulate(chain((0,),
                                                map(int, cond_col))))
        return FrontendColumns(
            dest=_gather(statics.dest, sidx),
            src1=_gather(statics.src1, sidx),
            src2=_gather(statics.src2, sidx),
            is_load=_gather(statics.is_load, sidx),
            is_store=_gather(statics.is_store, sidx),
            eligible=_gather(statics.eligible, sidx),
            fu=_gather(fu, sidx),
            control_index=control_index,
            cond_prefix=cond_prefix)


def _backward_pass(decoded: DecodedTrace, track_stores: bool,
                   fuse: bool) -> FusedColumns:
    """Backward dataflow over pre-gathered per-dynamic columns.

    Same state machine as the reference backend (see
    :mod:`repro.analysis.liveness` for the semantics); the batching is
    in how operands reach the loop body.
    """
    trace = decoded.trace
    statics = decoded.statics
    sidx = decoded.sidx
    n = len(sidx)
    provenance = statics.provenance

    dest_col = _gather(statics.dest, sidx)
    src1_col = _gather(statics.src1, sidx)
    src2_col = _gather(statics.src2, sidx)
    side_col = _gather(statics.side_effect, sidx)
    load_col = _gather(statics.is_load, sidx)
    store_col = _gather(statics.is_store, sidx)
    byte_col = _gather(statics.is_byte, sidx)
    elig_col = _gather(statics.eligible, sidx)

    dead = [False] * n
    direct = [False] * n

    reg_live = [True] * NUM_REGS
    reg_touched = [False] * NUM_REGS
    mem_live: Dict[int, bool] = {}
    mem_touched: Dict[int, bool] = {}

    n_dead = n_direct = n_dead_stores = n_eligible = 0

    next_write: List[Optional[int]] = [None] * NUM_REGS
    kill_pairs = []
    unkilled = 0

    walk = zip(range(n - 1, -1, -1), reversed(dest_col),
               reversed(src1_col), reversed(src2_col), reversed(side_col),
               reversed(load_col), reversed(store_col), reversed(byte_col),
               reversed(elig_col), reversed(trace.addrs))

    for (i, dest, src1, src2, side, is_load, is_store, is_byte,
         eligible, addr) in walk:
        if dest:
            n_eligible += eligible
            value_live = reg_live[dest]
            value_touched = reg_touched[dest]
            useful = value_live or side
            reg_live[dest] = False
            reg_touched[dest] = False
            if not useful:
                dead[i] = True
                n_dead += 1
                if fuse:
                    killer = next_write[dest]
                    if killer is not None:
                        kill_pairs.append((i, killer - i,
                                           provenance[sidx[i]] or "original"))
                    else:
                        unkilled += 1
                    next_write[dest] = i
                if not value_touched:
                    direct[i] = True
                    n_direct += 1
                if src1 > 0:
                    reg_touched[src1] = True
                if src2 > 0:
                    reg_touched[src2] = True
                if is_load and not is_byte:
                    mem_touched[addr & ~3] = True
                continue
            if fuse:
                next_write[dest] = i
            if src1 > 0:
                reg_live[src1] = True
                reg_touched[src1] = True
            if src2 > 0:
                reg_live[src2] = True
                reg_touched[src2] = True
            if is_load:
                word = addr & ~3
                mem_live[word] = True
                mem_touched[word] = True
            continue

        if is_store:
            if track_stores and not is_byte:
                word = addr & ~3
                store_live = mem_live.get(word, True)
                store_touched = mem_touched.get(word, False)
                mem_live[word] = False
                mem_touched[word] = False
                if not store_live:
                    dead[i] = True
                    n_dead += 1
                    n_dead_stores += 1
                    if not store_touched:
                        direct[i] = True
                        n_direct += 1
                    if src1 > 0:
                        reg_touched[src1] = True
                    if src2 > 0:
                        reg_touched[src2] = True
                    continue
            if src1 > 0:
                reg_live[src1] = True
                reg_touched[src1] = True
            if src2 > 0:
                reg_live[src2] = True
                reg_touched[src2] = True
            continue

        if src1 > 0:
            reg_live[src1] = True
            reg_touched[src1] = True
        if src2 > 0:
            reg_live[src2] = True
            reg_touched[src2] = True

    deadness = DeadnessColumns(
        dead=dead, direct=direct, n_eligible=n_eligible, n_dead=n_dead,
        n_direct=n_direct, n_dead_stores=n_dead_stores)
    if not fuse:
        return FusedColumns(deadness=deadness, kills=KillColumns(),
                            counts=StaticCounts())
    totals = Counter(sidx)
    deads = Counter(compress(sidx, dead))
    kill_pairs.reverse()
    return FusedColumns(
        deadness=deadness,
        kills=canonical_kills(kill_pairs, unkilled),
        counts=canonical_counts(totals, deads))
