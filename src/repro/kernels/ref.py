"""The ``python`` reference backend: straight-line ports of the
original per-consumer loops.

This backend defines the semantics every other backend must match
byte-for-byte.  The deadness logic is the exact backward dataflow pass
documented in :mod:`repro.analysis.liveness` (per-register liveness
flags, word-granular memory map, conservative end-of-program and
byte-store handling); the fused kernel runs the same pass and folds in
the two label-consuming walks that used to re-scan the trace:

* **kill distance** — the forward formulation ("record the pending dead
  write's distance when the next write to its register arrives") is
  re-expressed backward with a ``next_write[reg]`` table: at a write
  *i* to register *d*, the nearest later write ``next_write[d]`` is the
  killer, so a dead *i* records ``next_write[d] - i`` (or counts as
  unkilled when no later write exists — exactly the registers whose
  *last* write is dead, which is what the forward pass's leftover
  ``pending`` entries count).  Per register the two formulations visit
  the same (victim, killer) pairs; results are canonicalized to
  victim-ascending order (see :mod:`repro.kernels.base`).
* **per-static instance counters** — ``totals``/``deads`` accumulate in
  the same walk and are canonicalized to ascending static index.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.isa.program import TEXT_BASE
from repro.isa.registers import NUM_REGS
from repro.kernels.base import (
    DeadnessColumns,
    DecodedTrace,
    FrontendColumns,
    FusedColumns,
    KernelBackend,
    KillColumns,
    PredictionStream,
    StaticCounts,
    canonical_counts,
    canonical_kills,
)


class PythonBackend(KernelBackend):
    """Reference implementation (plain Python loops)."""

    name = "python"

    def _static_indices(self, trace) -> List[int]:
        base = TEXT_BASE
        if base:
            return [(pc - base) >> 2 for pc in trace.pcs]
        return [pc >> 2 for pc in trace.pcs]

    def _fused(self, decoded: DecodedTrace,
               track_stores: bool) -> FusedColumns:
        return _backward_pass(decoded, track_stores, fuse=True)

    def _deadness(self, decoded: DecodedTrace,
                  track_stores: bool) -> DeadnessColumns:
        return _backward_pass(decoded, track_stores, fuse=False).deadness

    def _static_counts(self, decoded: DecodedTrace,
                       dead: Sequence[bool]) -> StaticCounts:
        totals: Dict[int, int] = {}
        deads: Dict[int, int] = {}
        sidx = decoded.sidx
        for i in range(len(sidx)):
            si = sidx[i]
            totals[si] = totals.get(si, 0) + 1
            if dead[i]:
                deads[si] = deads.get(si, 0) + 1
        return canonical_counts(totals, deads)

    def _kill_distances(self, decoded: DecodedTrace,
                        dead: Sequence[bool]) -> KillColumns:
        sidx = decoded.sidx
        statics = decoded.statics
        s_dest = statics.dest
        provenance = statics.provenance

        # Forward formulation (the original distance.py loop), emitting
        # (victim, distance, tag) so the result can be canonicalized to
        # victim order.
        pending: List[Optional[int]] = [None] * NUM_REGS
        pairs = []
        for i in range(len(sidx)):
            si = sidx[i]
            dest = s_dest[si]
            if not dest:
                continue
            previous = pending[dest]
            if previous is not None:
                pairs.append((previous, i - previous,
                              provenance[sidx[previous]] or "original"))
            pending[dest] = i if dead[i] else None
        unkilled = sum(1 for entry in pending if entry is not None)
        pairs.sort(key=lambda pair: pair[0])
        return canonical_kills(pairs, unkilled)

    def _prediction_stream(self, decoded: DecodedTrace,
                           dead: Sequence[bool]) -> PredictionStream:
        trace = decoded.trace
        sidx = decoded.sidx
        pcs = trace.pcs
        taken = trace.taken
        eligible = decoded.statics.eligible
        is_cond = decoded.statics.is_cond_branch

        stream = PredictionStream()
        e_index = stream.eligible_index
        e_pc = stream.eligible_pc
        e_dead = stream.eligible_dead
        b_index = stream.branch_index
        b_taken = stream.branch_taken
        for i in range(len(sidx)):
            si = sidx[i]
            if eligible[si]:
                e_index.append(i)
                e_pc.append(pcs[i])
                e_dead.append(dead[i])
            elif is_cond[si]:
                b_index.append(i)
                b_taken.append(taken[i])
        return stream

    def _frontend(self, decoded: DecodedTrace,
                  fu: Sequence[int]) -> FrontendColumns:
        sidx = decoded.sidx
        statics = decoded.statics
        s_dest = statics.dest
        s_src1 = statics.src1
        s_src2 = statics.src2
        s_load = statics.is_load
        s_store = statics.is_store
        s_eligible = statics.eligible
        s_control = statics.is_branch
        s_cond = statics.is_cond_branch

        columns = FrontendColumns(dest=[], src1=[], src2=[],
                                  is_load=[], is_store=[], eligible=[],
                                  fu=[])
        dest = columns.dest
        src1 = columns.src1
        src2 = columns.src2
        is_load = columns.is_load
        is_store = columns.is_store
        eligible = columns.eligible
        fu_col = columns.fu
        control = columns.control_index
        prefix = columns.cond_prefix
        conds = 0
        prefix.append(0)
        for i in range(len(sidx)):
            si = sidx[i]
            dest.append(s_dest[si])
            src1.append(s_src1[si])
            src2.append(s_src2[si])
            is_load.append(s_load[si])
            is_store.append(s_store[si])
            eligible.append(s_eligible[si])
            fu_col.append(fu[si])
            if s_control[si]:
                control.append(i)
            conds += s_cond[si]
            prefix.append(conds)
        return columns


def _backward_pass(decoded: DecodedTrace, track_stores: bool,
                   fuse: bool) -> FusedColumns:
    """The exact liveness.py backward dataflow pass; with *fuse* the
    kill-distance and per-static counters ride the same walk."""
    trace = decoded.trace
    statics = decoded.statics
    sidx = decoded.sidx
    addrs = trace.addrs
    n = len(sidx)

    s_dest = statics.dest
    s_src1 = statics.src1
    s_src2 = statics.src2
    s_side = statics.side_effect
    s_load = statics.is_load
    s_store = statics.is_store
    s_byte = statics.is_byte
    s_eligible = statics.eligible
    provenance = statics.provenance

    dead = [False] * n
    direct = [False] * n

    # Backward state.  reg_live[r]: will the value currently in r be
    # read by a useful instruction later in the program?  reg_touched[r]:
    # will it be read by *any* instruction (useful or dead)?  End of
    # program: conservatively live, hence unread values stay "live".
    reg_live = [True] * NUM_REGS
    reg_touched = [False] * NUM_REGS
    mem_live: Dict[int, bool] = {}
    mem_touched: Dict[int, bool] = {}

    n_dead = n_direct = n_dead_stores = n_eligible = 0

    # Fused extras: nearest later register write (the prospective
    # killer), (victim, distance, tag) triples, per-static counters.
    next_write: List[Optional[int]] = [None] * NUM_REGS
    kill_pairs = []
    unkilled = 0
    totals: Dict[int, int] = {}
    deads: Dict[int, int] = {}

    for i in range(n - 1, -1, -1):
        si = sidx[i]
        dest = s_dest[si]
        is_store = s_store[si]
        if fuse:
            totals[si] = totals.get(si, 0) + 1

        if dest:
            n_eligible += s_eligible[si]
            value_live = reg_live[dest]
            value_touched = reg_touched[dest]
            useful = value_live or s_side[si]
            # This write supersedes the previous one: reset state for
            # the *previous* writer's value (which instructions between
            # it and here may yet read, going further backward).
            reg_live[dest] = False
            reg_touched[dest] = False
            if not useful:
                dead[i] = True
                n_dead += 1
                if fuse:
                    deads[si] = deads.get(si, 0) + 1
                    killer = next_write[dest]
                    if killer is not None:
                        kill_pairs.append((i, killer - i,
                                           provenance[si] or "original"))
                    else:
                        unkilled += 1
                    next_write[dest] = i
                if not value_touched:
                    direct[i] = True
                    n_direct += 1
                # A dead instruction contributes no uses: do not mark
                # its sources live (transitive propagation), but its
                # reads are still architectural reads for "touched".
                src = s_src1[si]
                if src > 0:
                    reg_touched[src] = True
                src = s_src2[si]
                if src > 0:
                    reg_touched[src] = True
                if s_load[si] and not s_byte[si]:
                    mem_touched[addrs[i] & ~3] = True
                continue
            if fuse:
                next_write[dest] = i
            # Useful value-producing instruction: mark sources live.
            src = s_src1[si]
            if src > 0:
                reg_live[src] = True
                reg_touched[src] = True
            src = s_src2[si]
            if src > 0:
                reg_live[src] = True
                reg_touched[src] = True
            if s_load[si]:
                word = addrs[i] & ~3
                mem_live[word] = True
                mem_touched[word] = True
            continue

        if is_store:
            if track_stores and not s_byte[si]:
                word = addrs[i] & ~3
                store_live = mem_live.get(word, True)
                store_touched = mem_touched.get(word, False)
                mem_live[word] = False
                mem_touched[word] = False
                if not store_live:
                    dead[i] = True
                    n_dead += 1
                    n_dead_stores += 1
                    if fuse:
                        deads[si] = deads.get(si, 0) + 1
                    if not store_touched:
                        direct[i] = True
                        n_direct += 1
                    src = s_src1[si]
                    if src > 0:
                        reg_touched[src] = True
                    src = s_src2[si]
                    if src > 0:
                        reg_touched[src] = True
                    continue
            # Live store (or byte store, always conservative): both the
            # address and the stored value are useful.
            src = s_src1[si]
            if src > 0:
                reg_live[src] = True
                reg_touched[src] = True
            src = s_src2[si]
            if src > 0:
                reg_live[src] = True
                reg_touched[src] = True
            continue

        # No destination, not a store: branches, jumps writing nothing,
        # syscalls, halt, nop.  Side-effecting ones are usefulness
        # roots; their sources are live.
        src = s_src1[si]
        if src > 0:
            reg_live[src] = True
            reg_touched[src] = True
        src = s_src2[si]
        if src > 0:
            reg_live[src] = True
            reg_touched[src] = True

    deadness = DeadnessColumns(
        dead=dead, direct=direct, n_eligible=n_eligible, n_dead=n_dead,
        n_direct=n_direct, n_dead_stores=n_dead_stores)
    kill_pairs.reverse()
    return FusedColumns(
        deadness=deadness,
        kills=canonical_kills(kill_pairs, unkilled),
        counts=canonical_counts(totals, deads))
