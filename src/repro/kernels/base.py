"""Kernel contract, result columns, backend registry, pass timings.

A *kernel* is one hot walk over a committed trace's structure-of-arrays
columns.  Every backend implements the same kernels over the same
:class:`DecodedTrace` (the decoded micro-op table: the per-program
:class:`~repro.analysis.statics.StaticTable` plus the precomputed
static-index column for the whole trace) and must produce **canonical,
byte-identical** results:

* ``static_indices`` — the decode kernel (pc stream → static indices);
* ``fused``          — one backward pass computing deadness labels,
  kill distances, and per-static instance counters together;
* ``deadness``       — the deadness subset of ``fused`` (three-pass
  comparison baseline and ``track_stores`` variants);
* ``static_counts`` / ``kill_distances`` — label-consuming walks for
  analyses reconstructed from cached deadness labels;
* ``prediction_stream`` — the per-PC event stream (eligible instances
  and conditional branches) that predictor evaluation walks;
* ``frontend``       — the pipeline decode block: per-dynamic gathered
  operand/memory/FU columns plus the control-transfer event stream
  (:class:`FrontendColumns`) that the timing simulator's block-wise
  front end consumes instead of per-instruction table dispatch.

Canonical-form rules (what "byte-identical" means across backends):
kill distances are ordered by the *dead write's* dynamic index
(ascending), ``by_provenance`` tags and per-static counter keys are
sorted ascending, and every column has the exact element types the
reference backend produces (``bool`` labels, ``int`` counters).

Every kernel invocation is timed: the per-pass wall time feeds the
module-level accumulator (:func:`pass_totals`, used by the kernel
benchmarks) and — when telemetry is on — a ``kernel:<pass>`` span plus
``repro_kernel_pass_*`` metrics, so fused-pass savings are visible in
``obs report`` / ``obs hotspots`` next to the stage spans.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs

__all__ = [
    "DeadnessColumns",
    "DecodedTrace",
    "FrontendColumns",
    "FusedColumns",
    "KernelBackend",
    "KillColumns",
    "PredictionStream",
    "StaticCounts",
    "available_backends",
    "backend_fingerprint",
    "default_backend_name",
    "get_backend",
    "pass_totals",
    "register_backend",
    "reset_pass_totals",
    "set_default_backend",
]


# ---------------------------------------------------------------------
# Result columns (the kernel contract's output types)
# ---------------------------------------------------------------------


@dataclass
class DecodedTrace:
    """The decoded micro-op table for one trace: the program's static
    facts plus the static index of every dynamic instruction."""

    trace: object
    statics: object
    #: static index per dynamic instruction (the decode column)
    sidx: Sequence[int]

    def __len__(self) -> int:
        return len(self.sidx)


@dataclass
class DeadnessColumns:
    """Per-instance deadness labels plus the summary counters."""

    dead: List[bool]
    direct: List[bool]
    n_eligible: int = 0
    n_dead: int = 0
    n_direct: int = 0
    n_dead_stores: int = 0


@dataclass
class KillColumns:
    """Kill distances of dead register writes, victim-ascending."""

    #: distance to the overwriting write, ordered by the dead write's
    #: dynamic index (canonical across backends)
    distances: List[int] = field(default_factory=list)
    unkilled: int = 0
    #: provenance tag -> distances (tags sorted, victim-ascending)
    by_provenance: Dict[str, List[int]] = field(default_factory=dict)


@dataclass
class StaticCounts:
    """Per-static dynamic-instance counters (keys sorted ascending)."""

    #: static index -> dynamic instances
    totals: Dict[int, int] = field(default_factory=dict)
    #: static index -> dead instances (only statics with >= 1)
    deads: Dict[int, int] = field(default_factory=dict)


@dataclass
class FusedColumns:
    """Everything the fused backward pass produces in one walk."""

    deadness: DeadnessColumns
    kills: KillColumns
    counts: StaticCounts


@dataclass
class PredictionStream:
    """The per-PC event stream predictor evaluation walks.

    Two position-sorted event lists replace the full-trace scan: the
    *eligible* instances (the population every dead predictor is
    consulted on) and the conditional branches (consumed by
    history-based designs via ``note_branch``).  A sweep builds the
    stream once per trace and every sweep point walks only the events.
    """

    #: dynamic indices of eligible instructions, ascending
    eligible_index: List[int] = field(default_factory=list)
    #: pc per eligible instruction (parallel to ``eligible_index``)
    eligible_pc: List[int] = field(default_factory=list)
    #: deadness label per eligible instruction
    eligible_dead: List[bool] = field(default_factory=list)
    #: dynamic indices of conditional branches, ascending
    branch_index: List[int] = field(default_factory=list)
    #: resolved outcome per conditional branch
    branch_taken: List[bool] = field(default_factory=list)

    @property
    def n_events(self) -> int:
        return len(self.eligible_index) + len(self.branch_index)


@dataclass
class FrontendColumns:
    """The pipeline front end's pre-decoded column block.

    Per-dynamic gathers of the static fact tables (one indexed lookup
    per column in the cycle loop instead of a ``table[sidx[tidx]]``
    double dispatch) plus the two derived event streams the block-wise
    fetch stage needs: the control-transfer positions (where fetch
    groups can end) and the running conditional-branch count (so a
    fetched block updates the branch counter with one subtraction).

    Canonical form: every column is a plain Python list with the exact
    element types of the per-static tables (``int`` registers/FU
    classes, ``bool`` flags); ``control_index`` is ascending and
    ``cond_prefix`` has ``len(trace) + 1`` entries with
    ``cond_prefix[0] == 0``.
    """

    dest: Sequence[int]
    src1: Sequence[int]
    src2: Sequence[int]
    is_load: Sequence[bool]
    is_store: Sequence[bool]
    eligible: Sequence[bool]
    #: function-unit class per dynamic instruction (the caller supplies
    #: the per-static classification; the kernel only gathers it)
    fu: Sequence[int]
    #: dynamic indices of control transfers (branches *and* jumps),
    #: ascending — the only places a fetch group can end
    control_index: Sequence[int] = field(default_factory=list)
    #: ``cond_prefix[i]`` = conditional branches among the first *i*
    #: dynamic instructions (length ``n + 1`` prefix sums)
    cond_prefix: Sequence[int] = field(default_factory=list)


# ---------------------------------------------------------------------
# Pass timing
# ---------------------------------------------------------------------

#: pass name -> {"calls", "items", "seconds"}; per-process accumulator
#: the kernel benchmarks read (always on — one dict update per kernel
#: *call*, never per element).
_PASS_TOTALS: Dict[str, Dict[str, float]] = {}


def pass_totals() -> Dict[str, Dict[str, float]]:
    """Accumulated per-pass timings since the last reset."""
    return {name: dict(bucket) for name, bucket in _PASS_TOTALS.items()}


def reset_pass_totals() -> None:
    _PASS_TOTALS.clear()


def _record_pass(backend: str, name: str, items: int,
                 seconds: float) -> None:
    bucket = _PASS_TOTALS.setdefault(
        name, {"calls": 0, "items": 0, "seconds": 0.0})
    bucket["calls"] += 1
    bucket["items"] += items
    bucket["seconds"] += seconds
    collector = obs.get_collector()
    if collector is None:
        return
    collector.tracer.add("kernel:%s" % name, seconds, backend=backend,
                         items=items)
    collector.registry.counter(
        "repro_kernel_pass_total", "kernel pass executions",
        kernel=name, backend=backend).inc()
    collector.registry.counter(
        "repro_kernel_pass_items_total",
        "dynamic items walked by kernel passes",
        kernel=name, backend=backend).inc(items)
    collector.registry.histogram(
        "repro_kernel_pass_seconds", "kernel pass wall time",
        kernel=name, backend=backend).observe(seconds)


class KernelBackend:
    """One implementation of the trace kernels (see module docstring).

    Subclasses implement the ``_``-prefixed methods; the public methods
    add the pass timing shared by every backend.
    """

    name = "abstract"

    # -- public, timed entry points -----------------------------------

    def static_indices(self, trace) -> Sequence[int]:
        started = time.perf_counter()
        result = self._static_indices(trace)
        _record_pass(self.name, "decode", len(result),
                     time.perf_counter() - started)
        return result

    def fused(self, decoded: DecodedTrace,
              track_stores: bool = True) -> FusedColumns:
        started = time.perf_counter()
        result = self._fused(decoded, track_stores)
        _record_pass(self.name, "fused", len(decoded),
                     time.perf_counter() - started)
        return result

    def deadness(self, decoded: DecodedTrace,
                 track_stores: bool = True) -> DeadnessColumns:
        started = time.perf_counter()
        result = self._deadness(decoded, track_stores)
        _record_pass(self.name, "deadness", len(decoded),
                     time.perf_counter() - started)
        return result

    def static_counts(self, decoded: DecodedTrace,
                      dead: Sequence[bool]) -> StaticCounts:
        started = time.perf_counter()
        result = self._static_counts(decoded, dead)
        _record_pass(self.name, "static-counts", len(decoded),
                     time.perf_counter() - started)
        return result

    def kill_distances(self, decoded: DecodedTrace,
                       dead: Sequence[bool]) -> KillColumns:
        started = time.perf_counter()
        result = self._kill_distances(decoded, dead)
        _record_pass(self.name, "kill-distance", len(decoded),
                     time.perf_counter() - started)
        return result

    def prediction_stream(self, decoded: DecodedTrace,
                          dead: Sequence[bool]) -> PredictionStream:
        started = time.perf_counter()
        result = self._prediction_stream(decoded, dead)
        _record_pass(self.name, "prediction-stream", result.n_events,
                     time.perf_counter() - started)
        return result

    def frontend(self, decoded: DecodedTrace,
                 fu: Sequence[int]) -> FrontendColumns:
        """The pipeline decode block for *decoded*; *fu* is the
        caller's per-static function-unit classification (gathered
        alongside the static fact tables)."""
        started = time.perf_counter()
        result = self._frontend(decoded, fu)
        _record_pass(self.name, "frontend", len(decoded),
                     time.perf_counter() - started)
        return result

    # -- backend implementations --------------------------------------

    def _static_indices(self, trace) -> Sequence[int]:
        raise NotImplementedError

    def _fused(self, decoded: DecodedTrace,
               track_stores: bool) -> FusedColumns:
        raise NotImplementedError

    def _deadness(self, decoded: DecodedTrace,
                  track_stores: bool) -> DeadnessColumns:
        raise NotImplementedError

    def _static_counts(self, decoded: DecodedTrace,
                       dead: Sequence[bool]) -> StaticCounts:
        raise NotImplementedError

    def _kill_distances(self, decoded: DecodedTrace,
                        dead: Sequence[bool]) -> KillColumns:
        raise NotImplementedError

    def _prediction_stream(self, decoded: DecodedTrace,
                           dead: Sequence[bool]) -> PredictionStream:
        raise NotImplementedError

    def _frontend(self, decoded: DecodedTrace,
                  fu: Sequence[int]) -> FrontendColumns:
        raise NotImplementedError


# ---------------------------------------------------------------------
# Canonicalization helpers shared by the backends
# ---------------------------------------------------------------------


def canonical_kills(pairs: List[Tuple[int, int, str]],
                    unkilled: int) -> KillColumns:
    """Build :class:`KillColumns` from ``(victim, distance, tag)``
    triples in victim-ascending order (caller guarantees the order)."""
    distances = [distance for _victim, distance, _tag in pairs]
    grouped: Dict[str, List[int]] = {}
    for _victim, distance, tag in pairs:
        grouped.setdefault(tag, []).append(distance)
    by_provenance = {tag: grouped[tag] for tag in sorted(grouped)}
    return KillColumns(distances=distances, unkilled=unkilled,
                       by_provenance=by_provenance)


def canonical_counts(totals: Dict[int, int],
                     deads: Dict[int, int]) -> StaticCounts:
    """Sort counter keys ascending (the canonical form)."""
    return StaticCounts(
        totals={si: totals[si] for si in sorted(totals)},
        deads={si: deads[si] for si in sorted(deads)})


# ---------------------------------------------------------------------
# Registry and selection
# ---------------------------------------------------------------------

_BACKENDS: Dict[str, KernelBackend] = {}
_DEFAULT: Optional[str] = None


def register_backend(backend: KernelBackend) -> KernelBackend:
    _BACKENDS[backend.name] = backend
    return backend


def available_backends() -> Tuple[str, ...]:
    return tuple(sorted(_BACKENDS))


def set_default_backend(name: Optional[str]) -> None:
    """Pin the process-default backend (``None`` restores env/default
    resolution).  The harness engine applies its configured backend
    here so pool workers and cache keys always agree."""
    global _DEFAULT
    if name:
        if name not in _BACKENDS:
            raise KeyError("unknown kernel backend %r (have: %s)" %
                           (name, ", ".join(available_backends())))
        _DEFAULT = name
    else:
        _DEFAULT = None


def default_backend_name() -> str:
    """The active backend name: pinned > ``REPRO_BACKEND`` > python."""
    if _DEFAULT:
        return _DEFAULT
    return os.environ.get("REPRO_BACKEND", "") or "python"


def get_backend(name: Optional[str] = None) -> KernelBackend:
    """Resolve a backend by name (default: the active backend)."""
    resolved = name or default_backend_name()
    backend = _BACKENDS.get(resolved)
    if backend is None:
        raise KeyError("unknown kernel backend %r (have: %s)" %
                       (resolved, ", ".join(available_backends())))
    return backend


def backend_fingerprint(name: Optional[str] = None) -> str:
    """The cache-key salt component: entries produced under different
    backends must never collide (`docs/architecture.md`), even though
    their contents are byte-identical by contract."""
    return "kernel-backend:%s" % (name or default_backend_name())
