"""The ``columnar`` backend: NumPy array operations over the decoded
micro-op table.

Registered only when NumPy is importable (``HAVE_NUMPY``) — NumPy is
an *optional* dependency; without it the registry simply never offers
this backend and every consumer falls back to ``python``/``batched``.

The backward deadness dataflow is inherently sequential (every label
depends on state mutated by younger instructions), so chasing it with
array ops cannot work.  Instead the work is *split*:

* a **minimal sequential loop** computes only what genuinely needs the
  backward state — the ``dead`` labels — over per-dynamic columns
  pre-gathered with :func:`numpy.take` (one C-level gather instead of
  a per-element double lookup, and no ``touched`` bookkeeping at all);
* everything that is a pure function of the labels is **vectorized**:

  - ``direct`` labels become per-register / per-word *interval
    queries* — a dead write is direct exactly when no instruction
    reads its register between it and its killer, which two
    ``searchsorted`` calls over a (register, position)-sorted read
    index answer for every victim at once (same trick over
    (word, position) keys for dead stores);
  - kill distances fall out of the same sorted write index (the
    killer of a dead write *is* its successor in the per-register
    write sequence);
  - per-static counters are ``numpy.bincount``;
  - the prediction stream and the pipeline front-end block are mask /
    gather / prefix-sum one-liners.

Results are canonicalized back to plain Python lists and scalars with
``.tolist()`` / ``int()`` so they are **byte-identical** (pickle-equal,
element types included) to the ``python`` reference — enforced by the
property suite and ``tests/test_kernels.py`` like every other backend.
"""

from __future__ import annotations

from typing import List, Sequence

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised via subprocess test
    np = None

from repro.isa.program import TEXT_BASE
from repro.kernels.base import (
    DeadnessColumns,
    DecodedTrace,
    FrontendColumns,
    FusedColumns,
    KernelBackend,
    KillColumns,
    PredictionStream,
    StaticCounts,
    canonical_kills,
)

#: True when the optional NumPy dependency is importable; the registry
#: in :mod:`repro.kernels` only registers the backend when it is.
HAVE_NUMPY = np is not None

_CACHE_ATTR = "_columnar_arrays"


class _Arrays:
    """NumPy views of one :class:`DecodedTrace`, cached on the decoded
    object so repeated kernel calls (sweeps, fused + stream pairs)
    convert the Python columns exactly once.

    With an attached artifact *bundle* (``trace.artifact_bundle``, see
    :mod:`repro.harness.artifacts`) the dynamic columns and the sorted
    read/write key indexes hydrate as **zero-copy** ``frombuffer``
    views of the mapped file instead of list conversions; only the
    per-static gathers still run (one C-level ``take`` each).
    """

    def __init__(self, decoded: DecodedTrace, bundle=None):
        trace = decoded.trace
        statics = decoded.statics
        self.n = len(decoded.sidx)
        if bundle is not None:
            self.sidx = bundle.array("sidx")
            self.pcs = bundle.array("pcs")
            self.taken = bundle.array("taken")
            self.word = (bundle.array("word") if bundle.has("word")
                         else np.asarray(trace.addrs,
                                         dtype=np.int64) & ~3)
        else:
            self.sidx = np.asarray(decoded.sidx, dtype=np.int64)
            self.pcs = np.asarray(trace.pcs, dtype=np.int64)
            self.taken = np.asarray(trace.taken, dtype=bool)
            self.word = np.asarray(trace.addrs, dtype=np.int64) & ~3
        self.dest = np.asarray(statics.dest,
                               dtype=np.int64)[self.sidx]
        self.src1 = np.asarray(statics.src1,
                               dtype=np.int64)[self.sidx]
        self.src2 = np.asarray(statics.src2,
                               dtype=np.int64)[self.sidx]
        self.side = np.asarray(statics.side_effect,
                               dtype=bool)[self.sidx]
        self.load = np.asarray(statics.is_load, dtype=bool)[self.sidx]
        self.store = np.asarray(statics.is_store,
                                dtype=bool)[self.sidx]
        self.byte = np.asarray(statics.is_byte, dtype=bool)[self.sidx]
        self.eligible = np.asarray(statics.eligible,
                                   dtype=bool)[self.sidx]
        self.cond = np.asarray(statics.is_cond_branch,
                               dtype=bool)[self.sidx]
        self.control = np.asarray(statics.is_branch,
                                  dtype=bool)[self.sidx]
        #: the attached artifact bundle, if any (read-only views)
        self.bundle = bundle
        #: plain-list mirrors for the sequential labeling loop (scalar
        #: indexing of ndarrays is slower than list indexing)
        self.lists = None
        #: sorted (register, position) keys of every register read and
        #: every register write; built on first deadness/kill query
        #: (or mapped straight from the bundle)
        self.read_keys = None
        self.write_keys = None
        #: provenance tags as integer codes (codes follow the sorted
        #: tag order, so grouping by ascending code yields the
        #: canonical sorted-tag ``by_provenance`` dict)
        self.tag_names = None
        self.tag_codes = None

    def loop_lists(self):
        if self.lists is None:
            self.lists = (self.dest.tolist(), self.src1.tolist(),
                          self.src2.tolist(), self.side.tolist(),
                          self.load.tolist(), self.store.tolist(),
                          self.byte.tolist(), self.word.tolist())
        return self.lists

    def reg_read_keys(self):
        """Every register read as a sorted ``reg * (n+1) + pos`` key
        (``searchsorted`` then answers "any read of reg r in positions
        (a, b]?" for a whole victim batch at once)."""
        if self.read_keys is None:
            if self.bundle is not None \
                    and self.bundle.has("read_keys"):
                self.read_keys = self.bundle.array("read_keys")
                return self.read_keys
            span = self.n + 1
            p1 = np.flatnonzero(self.src1 > 0)
            p2 = np.flatnonzero(self.src2 > 0)
            keys = np.concatenate((self.src1[p1] * span + p1,
                                   self.src2[p2] * span + p2))
            keys.sort()
            self.read_keys = keys
        return self.read_keys

    def reg_write_keys(self):
        """Every register write as a sorted ``reg * (n+1) + pos`` key
        plus the write positions/registers in that order."""
        if self.write_keys is None:
            bundle = self.bundle
            if bundle is not None and bundle.has("write_keys") \
                    and bundle.has("write_pos") \
                    and bundle.has("write_reg"):
                self.write_keys = (bundle.array("write_keys"),
                                   bundle.array("write_pos"),
                                   bundle.array("write_reg"))
                return self.write_keys
            span = self.n + 1
            pos = np.flatnonzero(self.dest > 0)
            reg = self.dest[pos]
            order = np.argsort(reg, kind="stable")
            pos = pos[order]
            reg = reg[order]
            self.write_keys = (reg * span + pos, pos, reg)
        return self.write_keys

    def provenance_codes(self, provenance):
        if self.tag_codes is None:
            tags = [tag or "original" for tag in provenance]
            self.tag_names = sorted(set(tags))
            index = {tag: code
                     for code, tag in enumerate(self.tag_names)}
            self.tag_codes = np.asarray(
                [index[tag] for tag in tags], dtype=np.int64)
        return self.tag_names, self.tag_codes


def _usable_bundle(decoded: DecodedTrace):
    """The trace's attached artifact bundle when it matches this
    decode (right length, dynamic columns present); else None."""
    bundle = getattr(decoded.trace, "artifact_bundle", None)
    if bundle is None:
        return None
    try:
        if bundle.n != len(decoded.sidx):
            return None
        if not all(bundle.has(name)
                   for name in ("sidx", "pcs", "taken")):
            return None
    except Exception:
        return None
    return bundle


def _arrays(decoded: DecodedTrace) -> "_Arrays":
    cached = getattr(decoded, _CACHE_ATTR, None)
    if cached is None or cached.n != len(decoded.sidx):
        cached = _Arrays(decoded, _usable_bundle(decoded))
        setattr(decoded, _CACHE_ATTR, cached)
    return cached


def _counts_dict(counts: "np.ndarray") -> dict:
    nz = np.flatnonzero(counts)
    return dict(zip(nz.tolist(), counts[nz].tolist()))


class ColumnarBackend(KernelBackend):
    """NumPy implementation (module docstring)."""

    name = "columnar"

    def _static_indices(self, trace) -> List[int]:
        pcs = np.asarray(trace.pcs, dtype=np.int64)
        if TEXT_BASE:
            pcs = pcs - TEXT_BASE
        return (pcs >> 2).tolist()

    def _fused(self, decoded: DecodedTrace,
               track_stores: bool) -> FusedColumns:
        arrays = _arrays(decoded)
        deadness, dead_arr, reg_kills = self._label(arrays,
                                                    track_stores)
        kills = self._kills_from_labels(decoded, arrays, dead_arr,
                                        reg_kills)
        counts = StaticCounts(
            totals=_counts_dict(np.bincount(
                arrays.sidx, minlength=len(decoded.statics))),
            deads=_counts_dict(np.bincount(
                arrays.sidx[dead_arr],
                minlength=len(decoded.statics))))
        return FusedColumns(deadness=deadness, kills=kills,
                            counts=counts)

    def _deadness(self, decoded: DecodedTrace,
                  track_stores: bool) -> DeadnessColumns:
        return self._label(_arrays(decoded), track_stores)[0]

    def _static_counts(self, decoded: DecodedTrace,
                       dead: Sequence[bool]) -> StaticCounts:
        arrays = _arrays(decoded)
        dead_arr = np.asarray(dead, dtype=bool)
        minlength = len(decoded.statics)
        return StaticCounts(
            totals=_counts_dict(np.bincount(arrays.sidx,
                                            minlength=minlength)),
            deads=_counts_dict(np.bincount(arrays.sidx[dead_arr],
                                           minlength=minlength)))

    def _kill_distances(self, decoded: DecodedTrace,
                        dead: Sequence[bool]) -> KillColumns:
        arrays = _arrays(decoded)
        return self._kills_from_labels(
            decoded, arrays, np.asarray(dead, dtype=bool))

    def _prediction_stream(self, decoded: DecodedTrace,
                           dead: Sequence[bool]) -> PredictionStream:
        arrays = _arrays(decoded)
        e_idx = np.flatnonzero(arrays.eligible)
        b_idx = np.flatnonzero(arrays.cond & ~arrays.eligible)
        eligible_dead = list(map(dead.__getitem__, e_idx.tolist()))
        return PredictionStream(
            eligible_index=e_idx.tolist(),
            eligible_pc=arrays.pcs[e_idx].tolist(),
            eligible_dead=eligible_dead,
            branch_index=b_idx.tolist(),
            branch_taken=arrays.taken[b_idx].tolist())

    def _frontend(self, decoded: DecodedTrace,
                  fu: Sequence[int]) -> FrontendColumns:
        arrays = _arrays(decoded)
        fu_col = np.asarray(fu, dtype=np.int64)[arrays.sidx]
        bundle = arrays.bundle
        if bundle is not None and bundle.has("control_index") \
                and bundle.has("cond_prefix"):
            control_index = bundle.array("control_index").tolist()
            cond_prefix = bundle.array("cond_prefix").tolist()
        else:
            prefix = np.zeros(arrays.n + 1, dtype=np.int64)
            np.cumsum(arrays.cond, out=prefix[1:])
            control_index = np.flatnonzero(arrays.control).tolist()
            cond_prefix = prefix.tolist()
        return FrontendColumns(
            dest=arrays.dest.tolist(),
            src1=arrays.src1.tolist(),
            src2=arrays.src2.tolist(),
            is_load=arrays.load.tolist(),
            is_store=arrays.store.tolist(),
            eligible=arrays.eligible.tolist(),
            fu=fu_col.tolist(),
            control_index=control_index,
            cond_prefix=cond_prefix)

    # -- labeling -----------------------------------------------------

    def _label(self, arrays: "_Arrays", track_stores: bool):
        """Dead labels from the minimal sequential loop, then every
        derived column vectorized.  Returns ``(DeadnessColumns, dead
        ndarray, (victims, killer, has_next))`` — callers reuse the
        array for counters and the killer triple for kill distances."""
        dead_b, n_dead, n_dead_stores = _dead_loop(arrays,
                                                   track_stores)
        dead_arr = np.frombuffer(dead_b, dtype=np.uint8).astype(bool)
        dead = dead_arr.tolist()
        n = arrays.n
        span = n + 1

        direct_arr = np.zeros(n, dtype=bool)
        n_eligible = int(np.count_nonzero(arrays.eligible
                                          & (arrays.dest > 0)))

        # Dead register writes: direct iff no read of the register in
        # (victim, killer] — the killer's own reads count (it marks its
        # sources *after* resetting the touched flag), hence the
        # half-open-on-the-left interval.
        victims = np.flatnonzero(dead_arr & (arrays.dest > 0))
        killer, has_next = self._killers(arrays, victims)
        if victims.size:
            reads = arrays.reg_read_keys()
            base = arrays.dest[victims] * span
            lo = np.searchsorted(reads, base + victims, side="right")
            hi = np.searchsorted(reads, base + killer, side="right")
            direct_arr[victims[lo == hi]] = True

        # Dead stores: direct iff no touching load of the word in
        # (victim, next tracked store) — touching means any useful
        # load, or a dead instruction's non-byte load.
        if track_stores:
            svictims = np.flatnonzero(dead_arr & arrays.store)
            if svictims.size:
                tracked = np.flatnonzero(arrays.store & ~arrays.byte)
                tkeys = arrays.word[tracked] * span + tracked
                tkeys.sort()
                loads = np.flatnonzero(arrays.load
                                       & (~dead_arr | ~arrays.byte))
                lkeys = arrays.word[loads] * span + loads
                lkeys.sort()
                base = arrays.word[svictims] * span
                loc = np.searchsorted(tkeys, base + svictims)
                nxt = np.minimum(loc + 1, tkeys.size - 1)
                s_next = (loc + 1 < tkeys.size) \
                    & (tkeys[nxt] // span == arrays.word[svictims])
                s_killer = np.where(s_next, tkeys[nxt] % span, n)
                lo = np.searchsorted(lkeys, base + svictims,
                                     side="right")
                hi = np.searchsorted(lkeys, base + s_killer,
                                     side="left")
                direct_arr[svictims[lo == hi]] = True

        deadness = DeadnessColumns(
            dead=dead, direct=direct_arr.tolist(),
            n_eligible=n_eligible, n_dead=n_dead,
            n_direct=int(np.count_nonzero(direct_arr)),
            n_dead_stores=n_dead_stores)
        return deadness, dead_arr, (victims, killer, has_next)

    def _killers(self, arrays: "_Arrays", victims: "np.ndarray"):
        """Per victim (a dead register write): the position of the next
        write to the same register (the killer), or the sentinel ``n``
        when none exists, plus the has-killer mask."""
        wkeys, wpos, wreg = arrays.reg_write_keys()
        span = arrays.n + 1
        loc = np.searchsorted(wkeys,
                              arrays.dest[victims] * span + victims)
        nxt = np.minimum(loc + 1, max(wpos.size - 1, 0))
        has_next = (loc + 1 < wpos.size) \
            & (wreg[nxt] == arrays.dest[victims])
        killer = np.where(has_next, wpos[nxt], arrays.n)
        return killer, has_next

    def _kills_from_labels(self, decoded: DecodedTrace,
                           arrays: "_Arrays",
                           dead_arr: "np.ndarray",
                           reg_kills=None) -> KillColumns:
        if reg_kills is None:
            victims = np.flatnonzero(dead_arr & (arrays.dest > 0))
            killer, has_next = self._killers(arrays, victims)
        else:
            victims, killer, has_next = reg_kills
        if not victims.size:
            return canonical_kills([], 0)
        killed = victims[has_next]
        dist = killer[has_next] - killed
        names, codes = arrays.provenance_codes(
            decoded.statics.provenance)
        vcodes = codes[arrays.sidx[killed]]
        # Victim-ascending within each tag falls out of `killed` being
        # ascending; ascending codes give the sorted-tag dict order.
        present = np.flatnonzero(np.bincount(vcodes,
                                             minlength=len(names)))
        by_provenance = {names[code]: dist[vcodes == code].tolist()
                         for code in present.tolist()}
        return KillColumns(distances=dist.tolist(),
                           unkilled=int(np.count_nonzero(~has_next)),
                           by_provenance=by_provenance)


def plane_columns(trace, statics):
    """The derived kernel columns the artifact plane persists next to
    the raw trace columns: word addresses, the sorted read and
    write-successor key indexes (shared by the direct-label and
    kill-distance queries), and the front end's control/cond-prefix
    event streams.  Everything here is a deterministic function of the
    trace, so hydrating the stored arrays is byte-identical to
    deriving them.  Without NumPy only the front-end event streams are
    written (stdlib derivation — they are the ones the list backends
    can hydrate); the key indexes are columnar-only detail."""
    from repro.kernels.base import DecodedTrace

    if np is None:
        from itertools import accumulate, chain, compress

        sidx = trace.static_indices()
        from repro.harness.artifacts import i8_bytes

        control_col = list(map(statics.is_branch.__getitem__, sidx))
        cond_col = list(map(statics.is_cond_branch.__getitem__, sidx))
        return [
            ("control_index", "i8", i8_bytes(
                list(compress(range(len(sidx)), control_col)))),
            ("cond_prefix", "i8", i8_bytes(
                list(accumulate(chain((0,), map(int, cond_col)))))),
        ]

    decoded = DecodedTrace(trace=trace, statics=statics,
                           sidx=trace.static_indices())
    arrays = _Arrays(decoded)
    wkeys, wpos, wreg = arrays.reg_write_keys()
    prefix = np.zeros(arrays.n + 1, dtype=np.int64)
    np.cumsum(arrays.cond, out=prefix[1:])

    def raw(values):
        return np.ascontiguousarray(
            values.astype("<i8", copy=False)).tobytes()

    return [
        ("word", "i8", raw(arrays.word)),
        ("read_keys", "i8", raw(arrays.reg_read_keys())),
        ("write_keys", "i8", raw(wkeys)),
        ("write_pos", "i8", raw(wpos)),
        ("write_reg", "i8", raw(wreg)),
        ("control_index", "i8", raw(np.flatnonzero(arrays.control))),
        ("cond_prefix", "i8", raw(prefix)),
    ]


def _dead_loop(arrays: "_Arrays", track_stores: bool):
    """The irreducibly sequential part: backward dead labeling only —
    no ``touched`` flags, no counters, no kill bookkeeping (all
    vectorized afterwards).  Semantics are exactly the liveness.py
    backward pass (see :mod:`repro.kernels.ref`)."""
    (dest_l, src1_l, src2_l, side_l, load_l, store_l, byte_l,
     word_l) = arrays.loop_lists()
    n = arrays.n
    dead = bytearray(n)
    reg_live = [True] * 64  # NUM_REGS is 32; headroom is harmless
    mem_live = {}
    n_dead = n_dead_stores = 0

    for i in range(n - 1, -1, -1):
        dest = dest_l[i]
        if dest:
            if reg_live[dest] or side_l[i]:
                reg_live[dest] = False
                src = src1_l[i]
                if src > 0:
                    reg_live[src] = True
                src = src2_l[i]
                if src > 0:
                    reg_live[src] = True
                if load_l[i]:
                    mem_live[word_l[i]] = True
                continue
            reg_live[dest] = False
            dead[i] = True
            n_dead += 1
            continue
        if store_l[i]:
            if track_stores and not byte_l[i]:
                word = word_l[i]
                store_live = mem_live.get(word, True)
                mem_live[word] = False
                if not store_live:
                    dead[i] = True
                    n_dead += 1
                    n_dead_stores += 1
                    continue
            src = src1_l[i]
            if src > 0:
                reg_live[src] = True
            src = src2_l[i]
            if src > 0:
                reg_live[src] = True
            continue
        src = src1_l[i]
        if src > 0:
            reg_live[src] = True
        src = src2_l[i]
        if src > 0:
            reg_live[src] = True

    return dead, n_dead, n_dead_stores
