"""Shared trace-kernel layer: single-pass walks over committed traces.

The hot loops of every analysis consumer — backward deadness, kill
distance, per-static locality counters, the per-PC prediction event
stream — live here as *kernels* over the trace's structure-of-arrays
columns, behind a backend registry:

* ``python``  — the reference backend (:mod:`repro.kernels.ref`), the
  byte-exact port of the original per-consumer loops;
* ``batched`` — bulk column operations (:mod:`repro.kernels.batched`),
  byte-identical by contract and enforced by the property suite;
* ``columnar`` — NumPy array operations
  (:mod:`repro.kernels.columnar`); registered only when the optional
  NumPy dependency is importable (``HAVE_NUMPY``), same byte-identity
  contract.

Select a backend with ``REPRO_BACKEND=<name>``, the engine's
``--backend`` flag / :class:`~repro.harness.engine.EngineConfig`, or
:func:`set_default_backend`.  The active backend is salted into the
engine's cache keys (:func:`backend_fingerprint`) so entries never
collide across backends.  See ``docs/architecture.md`` for the layer
diagram and the backend contract.

Module-level helpers bind the kernels to the repo's concrete types:
:func:`decode` builds the :class:`DecodedTrace` (reusing the trace's
cached static-index column), and :func:`prediction_stream_for` memoizes
the per-trace event stream on the analysis object so a sweep derives it
once and every sweep point replays it.
"""

from __future__ import annotations

from typing import Optional

from repro.kernels.base import (
    DeadnessColumns,
    DecodedTrace,
    FrontendColumns,
    FusedColumns,
    KernelBackend,
    KillColumns,
    PredictionStream,
    StaticCounts,
    available_backends,
    backend_fingerprint,
    default_backend_name,
    get_backend,
    pass_totals,
    register_backend,
    reset_pass_totals,
    set_default_backend,
)
from repro.kernels.batched import BatchedBackend
from repro.kernels.columnar import HAVE_NUMPY
from repro.kernels.ref import PythonBackend

register_backend(PythonBackend())
register_backend(BatchedBackend())
if HAVE_NUMPY:
    from repro.kernels.columnar import ColumnarBackend

    register_backend(ColumnarBackend())

__all__ = [
    "DeadnessColumns",
    "DecodedTrace",
    "FrontendColumns",
    "FusedColumns",
    "HAVE_NUMPY",
    "KernelBackend",
    "KillColumns",
    "PredictionStream",
    "StaticCounts",
    "available_backends",
    "backend_fingerprint",
    "decode",
    "default_backend_name",
    "get_backend",
    "pass_totals",
    "prediction_stream_for",
    "register_backend",
    "reset_pass_totals",
    "set_default_backend",
]


def decode(trace, statics=None,
           backend: Optional[KernelBackend] = None) -> DecodedTrace:
    """The decoded micro-op table for *trace*.

    Reuses the trace's cached static-index column when available (any
    :class:`~repro.emulator.trace.Trace`), falling back to the decode
    kernel for duck-typed traces in tests.
    """
    if statics is None:
        from repro.analysis.statics import StaticTable
        statics = StaticTable(trace.program)
    column = getattr(trace, "static_indices", None)
    if column is not None:
        sidx = column()
    else:
        sidx = (backend or get_backend()).static_indices(trace)
    return DecodedTrace(trace=trace, statics=statics, sidx=sidx)


def prediction_stream_for(analysis) -> PredictionStream:
    """The per-PC event stream for an analyzed trace, memoized on the
    analysis object (sweeps share one stream across all points)."""
    stream = getattr(analysis, "_prediction_stream", None)
    if stream is None:
        decoded = decode(analysis.trace, analysis.statics)
        stream = get_backend().prediction_stream(decoded, analysis.dead)
        analysis._prediction_stream = stream
    return stream
