"""Tokenizer for Mini-C."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.lang.errors import CompileError

KEYWORDS = frozenset(
    ["int", "void", "if", "else", "while", "for", "return", "break",
     "continue"])

# Multi-character operators first so maximal munch works.
OPERATORS = (
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "(", ")", "{", "}", "[", "]", ";", ",",
)


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is ``"num"``, ``"ident"``, a keyword, or the operator text
    itself; ``value`` carries the integer for numbers and the name for
    identifiers.
    """

    kind: str
    value: object
    line: int


def tokenize(source: str) -> List[Token]:
    """Tokenize *source*; raises :class:`CompileError` on bad input."""
    return list(_tokens(source))


def _tokens(source: str) -> Iterator[Token]:
    position = 0
    line = 1
    length = len(source)
    while position < length:
        char = source[position]
        if char == "\n":
            line += 1
            position += 1
            continue
        if char in " \t\r":
            position += 1
            continue
        if source.startswith("//", position):
            end = source.find("\n", position)
            position = length if end < 0 else end
            continue
        if source.startswith("/*", position):
            end = source.find("*/", position + 2)
            if end < 0:
                raise CompileError("unterminated comment", line)
            line += source.count("\n", position, end)
            position = end + 2
            continue
        if "0" <= char <= "9":  # ASCII only: isdigit() admits Unicode
            start = position
            if source.startswith("0x", position) or \
                    source.startswith("0X", position):
                position += 2
                while position < length and \
                        source[position] in "0123456789abcdefABCDEF":
                    position += 1
                if position == start + 2:
                    raise CompileError("malformed hex literal", line)
                yield Token("num", int(source[start:position], 16), line)
                continue
            while position < length and "0" <= source[position] <= "9":
                position += 1
            yield Token("num", int(source[start:position]), line)
            continue
        if char.isalpha() or char == "_":
            start = position
            while position < length and (source[position].isalnum()
                                         or source[position] == "_"):
                position += 1
            name = source[start:position]
            if name in KEYWORDS:
                yield Token(name, name, line)
            else:
                yield Token("ident", name, line)
            continue
        for operator in OPERATORS:
            if source.startswith(operator, position):
                yield Token(operator, operator, line)
                position += len(operator)
                break
        else:
            raise CompileError("unexpected character %r" % char, line)
    yield Token("eof", None, line)
