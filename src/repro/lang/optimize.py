"""Classic scalar optimizations: copy propagation and static DCE.

These passes are the compile-time counterpart of the paper's dynamic
technique — and the A5 experiment uses them to show why they cannot
substitute for it.  Static dead-code elimination removes an instruction
only when its value is dead on **every** path (provable from the CFG);
the deadness the paper measures is *dynamic* — instructions dead on the
paths actually taken, alive on others — which is invisible to any
sound compile-time analysis.

Passes (both iterate to a local fixpoint):

* :func:`propagate_copies` — block-local copy/constant propagation:
  after ``Move(dst, src)``, uses of ``dst`` read ``src`` directly until
  either side is redefined.
* :func:`eliminate_dead_code` — CFG-liveness-driven removal of
  side-effect-free instructions whose results are dead on all paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set

from repro.lang import ir
from repro.lang.liveness import compute_liveness


@dataclass
class OptStats:
    """What the optimizer did (for -v output and tests)."""

    copies_propagated: int = 0
    instructions_removed: int = 0


def _substitute(instr: ir.IRInstr, mapping: Dict[ir.VReg, ir.Operand],
                stats: OptStats) -> None:
    """Rewrite *instr*'s operand fields through *mapping* in place."""

    def lookup(operand: ir.Operand) -> ir.Operand:
        if isinstance(operand, ir.VReg) and operand in mapping:
            stats.copies_propagated += 1
            return mapping[operand]
        return operand

    if isinstance(instr, ir.Move):
        instr.src = lookup(instr.src)
    elif isinstance(instr, ir.BinOp):
        instr.a = lookup(instr.a)
        instr.b = lookup(instr.b)
    elif isinstance(instr, ir.UnOp):
        instr.a = lookup(instr.a)
    elif isinstance(instr, ir.Store):
        instr.src = lookup(instr.src)
        # base must stay a VReg; only rewrite register-to-register.
        replacement = mapping.get(instr.base)
        if isinstance(replacement, ir.VReg):
            stats.copies_propagated += 1
            instr.base = replacement
    elif isinstance(instr, ir.Load):
        replacement = mapping.get(instr.base)
        if isinstance(replacement, ir.VReg):
            stats.copies_propagated += 1
            instr.base = replacement
    elif isinstance(instr, ir.StoreGlobal):
        instr.src = lookup(instr.src)
    elif isinstance(instr, ir.Call):
        instr.args = [lookup(argument) for argument in instr.args]
    elif isinstance(instr, ir.Print):
        instr.value = lookup(instr.value)
    elif isinstance(instr, ir.CondBr):
        instr.a = lookup(instr.a)
        instr.b = lookup(instr.b)
    elif isinstance(instr, ir.Ret):
        if instr.value is not None:
            instr.value = lookup(instr.value)


def propagate_copies(function: ir.IRFunction,
                     stats: OptStats = None) -> OptStats:
    """Block-local copy/constant propagation, in place."""
    if stats is None:
        stats = OptStats()
    for block in function.blocks:
        mapping: Dict[ir.VReg, ir.Operand] = {}
        instrs = list(block.instrs)
        if block.terminator is not None:
            instrs.append(block.terminator)
        for instr in instrs:
            _substitute(instr, mapping, stats)
            defs = instr.defs()
            for defined in defs:
                # A new definition invalidates copies of the target
                # and every copy reading it.
                mapping.pop(defined, None)
                stale = [dst for dst, src in mapping.items()
                         if src == defined]
                for dst in stale:
                    del mapping[dst]
            if isinstance(instr, ir.Move) and instr.dst != instr.src:
                mapping[instr.dst] = instr.src
    return stats


#: instruction types static DCE may delete when the result is dead;
#: loads are architecturally removable too but are kept (matching the
#: hoisting pass's conservatism about addresses).
_REMOVABLE = (ir.Const, ir.Move, ir.BinOp, ir.UnOp, ir.GlobalAddr,
              ir.FrameAddr)


def eliminate_dead_code(function: ir.IRFunction,
                        stats: OptStats = None) -> OptStats:
    """Remove side-effect-free instructions dead on every path."""
    if stats is None:
        stats = OptStats()
    changed = True
    while changed:
        changed = False
        liveness = compute_liveness(function)
        for block in function.blocks:
            live: Set[ir.VReg] = set(liveness.live_out[block.label])
            if block.terminator is not None:
                live.update(block.terminator.uses())
            kept = []
            for instr in reversed(block.instrs):
                defs = instr.defs()
                if (isinstance(instr, _REMOVABLE) and defs
                        and defs[0] not in live):
                    stats.instructions_removed += 1
                    changed = True
                    continue
                for defined in defs:
                    live.discard(defined)
                live.update(instr.uses())
                kept.append(instr)
            kept.reverse()
            block.instrs = kept
    return stats


def optimize_module(module: ir.IRModule) -> OptStats:
    """Run copy propagation then static DCE over every function."""
    stats = OptStats()
    for function in module.functions:
        propagate_copies(function, stats)
        eliminate_dead_code(function, stats)
    return stats
