"""Linear-scan register allocation.

Virtual registers are mapped to the ABI's allocatable pools:

* caller-saved temporaries ``t0``-``t9`` — free to use, but clobbered
  by calls, so only intervals that do not span a call site get them;
* callee-saved ``s0``-``s7`` — survive calls, but the function must
  save and restore every one it touches (that save/restore code is the
  paper's second recognized source of dead instructions; codegen tags
  it ``callee-save``);
* anything that fits in neither pool spills to a stack slot, accessed
  through the reserved scratch registers ``k0``/``k1``.

Intervals are conservative whole-range approximations ([first point
where the vreg is live or defined, last point where it is live or
used], with block live-in/live-out points included so values live
across loop back edges cover the whole loop).  Allocation is the
classic Poletto/Sarkar scan: sort by start, expire actives, assign from
the preferred pool, spill when both pools are exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.lang.ir import Call, IRFunction, VReg
from repro.lang.liveness import compute_liveness

CALLER_SAVED = tuple("t%d" % i for i in range(10))
CALLEE_SAVED = tuple("s%d" % i for i in range(8))


@dataclass
class Location:
    """Where a vreg lives: a register name or a spill slot index."""

    register: Optional[str] = None
    spill_slot: Optional[int] = None

    @property
    def is_spilled(self) -> bool:
        return self.spill_slot is not None


@dataclass
class Allocation:
    """Result of register allocation for one function."""

    locations: Dict[VReg, Location] = field(default_factory=dict)
    used_callee_saved: List[str] = field(default_factory=list)
    n_spill_slots: int = 0
    has_calls: bool = False

    def location(self, vreg: VReg) -> Location:
        return self.locations[vreg]


@dataclass
class _Interval:
    vreg: VReg
    start: int
    end: int
    crosses_call: bool = False


def _build_intervals(function: IRFunction) -> Tuple[List[_Interval], bool]:
    """Conservative live intervals over the linearized instruction list."""
    liveness = compute_liveness(function)

    starts: Dict[VReg, int] = {}
    ends: Dict[VReg, int] = {}
    call_positions: List[int] = []

    def touch(vreg: VReg, position: int) -> None:
        if vreg not in starts:
            starts[vreg] = position
            ends[vreg] = position
        else:
            if position < starts[vreg]:
                starts[vreg] = position
            if position > ends[vreg]:
                ends[vreg] = position

    position = 0
    for block in function.blocks:
        block_start = position
        for vreg in liveness.live_in[block.label]:
            touch(vreg, block_start)
        instrs = list(block.instrs)
        if block.terminator is not None:
            instrs.append(block.terminator)
        for instr in instrs:
            for vreg in instr.uses():
                touch(vreg, position)
            for vreg in instr.defs():
                touch(vreg, position)
            if isinstance(instr, Call):
                call_positions.append(position)
            position += 1
        block_end = position - 1 if position > block_start else block_start
        for vreg in liveness.live_out[block.label]:
            touch(vreg, block_end)

    intervals = [
        _Interval(vreg=vreg, start=starts[vreg], end=ends[vreg])
        for vreg in starts
    ]
    for interval in intervals:
        interval.crosses_call = any(
            interval.start < call < interval.end
            for call in call_positions)
    intervals.sort(key=lambda interval: (interval.start, interval.vreg.id))
    return intervals, bool(call_positions)


def allocate_registers(function: IRFunction) -> Allocation:
    """Assign every vreg of *function* a register or a spill slot."""
    intervals, has_calls = _build_intervals(function)
    allocation = Allocation(has_calls=has_calls)

    free_caller: List[str] = list(CALLER_SAVED)
    free_callee: List[str] = list(CALLEE_SAVED)
    active: List[_Interval] = []  # sorted by end
    register_of: Dict[VReg, str] = {}
    used_callee: Set[str] = set()

    def expire(current_start: int) -> None:
        while active and active[0].end < current_start:
            expired = active.pop(0)
            register = register_of[expired.vreg]
            if register in CALLEE_SAVED:
                free_callee.append(register)
            else:
                free_caller.append(register)

    def insert_active(interval: _Interval) -> None:
        index = 0
        while index < len(active) and active[index].end <= interval.end:
            index += 1
        active.insert(index, interval)

    for interval in intervals:
        expire(interval.start)
        register: Optional[str] = None
        if interval.crosses_call:
            if free_callee:
                register = free_callee.pop(0)
        else:
            if free_caller:
                register = free_caller.pop(0)
            elif free_callee:
                # A short interval may borrow a callee-saved register;
                # it costs a save/restore pair but avoids a spill.
                register = free_callee.pop(0)
        if register is None:
            slot = allocation.n_spill_slots
            allocation.n_spill_slots += 1
            allocation.locations[interval.vreg] = Location(spill_slot=slot)
            continue
        register_of[interval.vreg] = register
        if register in CALLEE_SAVED:
            used_callee.add(register)
        allocation.locations[interval.vreg] = Location(register=register)
        insert_active(interval)

    allocation.used_callee_saved = sorted(used_callee)
    return allocation
