"""IR -> repro assembly.

Calling convention:

* arguments in ``a0``-``a3``, result in ``v0``, return address in
  ``ra`` (saved in the prologue of non-leaf functions);
* ``t0``-``t9`` caller-saved, ``s0``-``s7`` callee-saved (each used
  ``sN`` is saved/restored in prologue/epilogue, tagged
  ``@callee-save``);
* ``k0``/``k1`` are spill scratch, ``at`` is the immediate/address
  scratch — none are allocatable;
* the frame is ``sp``-relative and fixed-size::

      sp + 0 ..                 spill slots
      sp + spills ..            local arrays
      sp + arrays ..            saved s-registers
      sp + saves ..             saved ra (non-leaf)

Every assembly line inherits the provenance tag of the IR instruction
that produced it, so a hoisted IR instruction that expands to two
machine instructions tags both.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.lang import ir
from repro.lang.errors import CompileError
from repro.lang.regalloc import Allocation, allocate_registers

_IMM_MIN, _IMM_MAX = -32768, 32767

#: branch op -> (mnemonic, swap operands?)
_BRANCH_OPS = {
    "==": ("beq", False),
    "!=": ("bne", False),
    "<": ("blt", False),
    ">=": ("bge", False),
    ">": ("blt", True),
    "<=": ("bge", True),
}

#: BinOps with a direct I-format form when the right operand is an
#: immediate in range: op -> mnemonic
_IMMEDIATE_FORMS = {
    "+": "addi",
    "&": "andi",
    "|": "ori",
    "^": "xori",
    "<": "slti",
    "<<": "slli",
    ">>": "srai",
}

_REGISTER_FORMS = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "div",
    "%": "rem",
    "&": "and",
    "|": "or",
    "^": "xor",
    "<<": "sllv",
    ">>": "srav",
    "<": "slt",
}


class _GlobalLayout:
    """Byte offsets of globals within the data segment."""

    def __init__(self, module: ir.IRModule):
        self.offsets: Dict[str, int] = {}
        offset = 0
        for name, (size, _) in module.globals.items():
            self.offsets[name] = offset
            offset += 4 * size
        self.total = offset


class _FunctionCodegen:
    def __init__(self, function: ir.IRFunction, layout: _GlobalLayout):
        self.function = function
        self.layout = layout
        self.allocation: Allocation = allocate_registers(function)
        self.lines: List[str] = []
        self.provenance: Optional[str] = None
        self._frame()

    # ----- frame layout -----

    def _frame(self) -> None:
        allocation = self.allocation
        offset = 0
        self.spill_base = offset
        offset += 4 * allocation.n_spill_slots
        self.array_offsets: Dict[int, int] = {}
        for slot, size in sorted(self.function.frame_slots.items()):
            self.array_offsets[slot] = offset
            offset += (size + 3) & ~3
        self.save_offsets: Dict[str, int] = {}
        for register in allocation.used_callee_saved:
            self.save_offsets[register] = offset
            offset += 4
        self.ra_offset = -1
        if allocation.has_calls:
            self.ra_offset = offset
            offset += 4
        self.frame_size = (offset + 7) & ~7

    # ----- emission helpers -----

    def emit(self, text: str) -> None:
        if self.provenance:
            text = "%s  @%s" % (text, self.provenance)
        self.lines.append("    " + text)

    def emit_label(self, label: str) -> None:
        self.lines.append("%s:" % label)

    def spill_offset(self, slot: int) -> int:
        return self.spill_base + 4 * slot

    def read(self, operand: ir.Operand, scratch: str) -> str:
        """Return a register holding *operand*, loading into *scratch*
        when the operand is an immediate or a spilled vreg."""
        if isinstance(operand, int):
            if operand == 0:
                return "zero"
            self.emit("li %s, %d" % (scratch, operand))
            return scratch
        location = self.allocation.location(operand)
        if location.is_spilled:
            self.emit("lw %s, %d(sp)" % (scratch,
                                         self.spill_offset(
                                             location.spill_slot)))
            return scratch
        return location.register

    def dest(self, vreg: ir.VReg) -> Tuple[str, Optional[int]]:
        """Register to compute a def into, plus a spill offset to store
        it to afterwards (None when the vreg lives in a register)."""
        location = self.allocation.location(vreg)
        if location.is_spilled:
            return "k0", self.spill_offset(location.spill_slot)
        return location.register, None

    def write_back(self, spill: Optional[int]) -> None:
        if spill is not None:
            self.emit("sw k0, %d(sp)" % spill)

    # ----- prologue / body / epilogue -----

    def run(self) -> List[str]:
        function = self.function
        self.emit_label(function.name)
        self.provenance = None
        if self.frame_size:
            self.emit("addi sp, sp, %d" % -self.frame_size)
        if self.ra_offset >= 0:
            self.emit("sw ra, %d(sp)" % self.ra_offset)
        self.provenance = "callee-save"
        for register, offset in self.save_offsets.items():
            self.emit("sw %s, %d(sp)" % (register, offset))
        self.provenance = None

        epilogue = "%s__epilogue" % function.name
        for index, block in enumerate(function.blocks):
            if index:
                self.emit_label(block.label)
            for instr in block.instrs:
                self.provenance = instr.provenance
                self.instr(instr)
            self.provenance = (block.terminator.provenance
                               if block.terminator else None)
            next_label = (function.blocks[index + 1].label
                          if index + 1 < len(function.blocks) else epilogue)
            self.terminator(block.terminator, next_label, epilogue)
        self.provenance = None

        self.emit_label(epilogue)
        self.provenance = "callee-save"
        for register, offset in self.save_offsets.items():
            self.emit("lw %s, %d(sp)" % (register, offset))
        self.provenance = None
        if self.ra_offset >= 0:
            self.emit("lw ra, %d(sp)" % self.ra_offset)
        if self.frame_size:
            self.emit("addi sp, sp, %d" % self.frame_size)
        self.emit("ret")
        return self.lines

    # ----- instructions -----

    def instr(self, instr: ir.IRInstr) -> None:
        if isinstance(instr, ir.Const):
            register, spill = self.dest(instr.dst)
            self.emit("li %s, %d" % (register, instr.value))
            self.write_back(spill)
        elif isinstance(instr, ir.Move):
            register, spill = self.dest(instr.dst)
            if isinstance(instr.src, int):
                self.emit("li %s, %d" % (register, instr.src))
            else:
                source = self.read(instr.src, "k1")
                if source != register:
                    self.emit("move %s, %s" % (register, source))
                elif spill is not None:
                    pass  # value already in k0? cannot happen: src != dst
            self.write_back(spill)
        elif isinstance(instr, ir.BinOp):
            self._binop(instr)
        elif isinstance(instr, ir.UnOp):
            self._unop(instr)
        elif isinstance(instr, ir.GlobalAddr):
            register, spill = self.dest(instr.dst)
            offset = self.layout.offsets[instr.name]
            if offset > _IMM_MAX:
                raise CompileError("data segment exceeds gp addressing "
                                   "range (32 KB)")
            self.emit("addi %s, gp, %d" % (register, offset))
            self.write_back(spill)
        elif isinstance(instr, ir.FrameAddr):
            register, spill = self.dest(instr.dst)
            self.emit("addi %s, sp, %d" %
                      (register, self.array_offsets[instr.slot]))
            self.write_back(spill)
        elif isinstance(instr, ir.Load):
            base = self.read(instr.base, "k1")
            register, spill = self.dest(instr.dst)
            self.emit("lw %s, %d(%s)" % (register, instr.offset, base))
            self.write_back(spill)
        elif isinstance(instr, ir.Store):
            value = self.read(instr.src, "k0")
            base = self.read(instr.base, "k1")
            self.emit("sw %s, %d(%s)" % (value, instr.offset, base))
        elif isinstance(instr, ir.LoadGlobal):
            register, spill = self.dest(instr.dst)
            self.emit("lw %s, %d(gp)" %
                      (register, self.layout.offsets[instr.name]))
            self.write_back(spill)
        elif isinstance(instr, ir.StoreGlobal):
            value = self.read(instr.src, "k0")
            self.emit("sw %s, %d(gp)" %
                      (value, self.layout.offsets[instr.name]))
        elif isinstance(instr, ir.Param):
            register, spill = self.dest(instr.dst)
            self.emit("move %s, a%d" % (register, instr.index))
            self.write_back(spill)
        elif isinstance(instr, ir.Call):
            self._call(instr)
        elif isinstance(instr, ir.Print):
            value = self.read(instr.value, "k0")
            self.emit("move a0, %s" % value)
            self.emit("li v0, 1")
            self.emit("syscall")
        else:  # pragma: no cover
            raise CompileError("unhandled IR instruction %r" % instr)

    def _binop(self, instr: ir.BinOp) -> None:
        op = instr.op
        if op in ("==", "!=", "<=", ">", ">="):
            self._comparison(instr)
            return
        register, spill = self.dest(instr.dst)
        b = instr.b
        immediate_form = _IMMEDIATE_FORMS.get(op)
        if isinstance(b, int) and immediate_form is not None and \
                self._immediate_ok(op, b):
            a = self.read(instr.a, "k1")
            self.emit("%s %s, %s, %d" % (immediate_form, register, a, b))
            self.write_back(spill)
            return
        if op == "-" and isinstance(b, int) and -b >= _IMM_MIN and \
                -b <= _IMM_MAX:
            a = self.read(instr.a, "k1")
            self.emit("addi %s, %s, %d" % (register, a, -b))
            self.write_back(spill)
            return
        a = self.read(instr.a, "k1")
        b_register = self.read(b, "at")
        self.emit("%s %s, %s, %s" % (_REGISTER_FORMS[op], register, a,
                                     b_register))
        self.write_back(spill)

    @staticmethod
    def _immediate_ok(op: str, value: int) -> bool:
        if op in ("&", "|", "^"):
            return 0 <= value <= 0xFFFF
        if op in ("<<", ">>"):
            return 0 <= value <= 31
        return _IMM_MIN <= value <= _IMM_MAX

    def _comparison(self, instr: ir.BinOp) -> None:
        register, spill = self.dest(instr.dst)
        a = self.read(instr.a, "k1")
        b = self.read(instr.b, "at")
        if instr.op == "==":
            self.emit("xor %s, %s, %s" % (register, a, b))
            self.emit("sltiu %s, %s, 1" % (register, register))
        elif instr.op == "!=":
            self.emit("xor %s, %s, %s" % (register, a, b))
            self.emit("sltu %s, zero, %s" % (register, register))
        elif instr.op == ">":
            self.emit("slt %s, %s, %s" % (register, b, a))
        elif instr.op == "<=":
            self.emit("slt %s, %s, %s" % (register, b, a))
            self.emit("xori %s, %s, 1" % (register, register))
        else:  # ">="
            self.emit("slt %s, %s, %s" % (register, a, b))
            self.emit("xori %s, %s, 1" % (register, register))
        self.write_back(spill)

    def _unop(self, instr: ir.UnOp) -> None:
        register, spill = self.dest(instr.dst)
        a = self.read(instr.a, "k1")
        if instr.op == "-":
            self.emit("sub %s, zero, %s" % (register, a))
        elif instr.op == "!":
            self.emit("sltiu %s, %s, 1" % (register, a))
        else:  # '~'
            self.emit("nor %s, %s, zero" % (register, a))
        self.write_back(spill)

    def _call(self, instr: ir.Call) -> None:
        if len(instr.args) > 4:
            raise CompileError("more than 4 call arguments")
        for index, argument in enumerate(instr.args):
            value = self.read(argument, "k0")
            self.emit("move a%d, %s" % (index, value))
        self.emit("jal %s" % instr.name)
        if instr.dst is not None:
            register, spill = self.dest(instr.dst)
            self.emit("move %s, v0" % register)
            self.write_back(spill)

    # ----- terminators -----

    def terminator(self, terminator: Optional[ir.Terminator],
                   next_label: Optional[str], epilogue: str) -> None:
        if terminator is None:  # pragma: no cover - lowering always sets
            raise CompileError("block without terminator in %s" %
                               self.function.name)
        if isinstance(terminator, ir.Jump):
            if terminator.target != next_label:
                self.emit("j %s" % terminator.target)
            return
        if isinstance(terminator, ir.Ret):
            if terminator.value is not None:
                if isinstance(terminator.value, int):
                    self.emit("li v0, %d" % terminator.value)
                else:
                    value = self.read(terminator.value, "k0")
                    self.emit("move v0, %s" % value)
            if next_label != epilogue:
                self.emit("j %s" % epilogue)
            return
        assert isinstance(terminator, ir.CondBr)
        mnemonic, swap = _BRANCH_OPS[terminator.op]
        a = self.read(terminator.a, "k1")
        b = self.read(terminator.b, "at")
        if swap:
            a, b = b, a
        if terminator.if_true == next_label:
            # Branch on the inverse condition to the false target; the
            # operand order (including any swap) is already final, so
            # inverting the mnemonic alone negates the condition.
            self.emit("%s %s, %s, %s" % (_INVERTED[mnemonic], a, b,
                                         terminator.if_false))
        elif terminator.if_false == next_label:
            self.emit("%s %s, %s, %s" % (mnemonic, a, b,
                                         terminator.if_true))
        else:
            self.emit("%s %s, %s, %s" % (mnemonic, a, b,
                                         terminator.if_true))
            self.emit("j %s" % terminator.if_false)


#: branch mnemonic -> mnemonic for the negated condition
_INVERTED = {
    "beq": "bne",
    "bne": "beq",
    "blt": "bge",
    "bge": "blt",
}


def generate_module(module: ir.IRModule) -> str:
    """Generate complete assembly text for *module*.

    Layout: a ``_start`` stub (call ``main``, halt), every function,
    then the data segment with all globals.
    """
    layout = _GlobalLayout(module)
    lines: List[str] = [
        "# generated by repro.lang",
        "_start:",
        "    jal main",
        "    halt",
        "",
    ]
    for function in module.functions:
        lines.extend(_FunctionCodegen(function, layout).run())
        lines.append("")

    lines.append(".data")
    for name, (size, init) in module.globals.items():
        if init:
            values = list(init) + [0] * (size - len(init))
            lines.append("%s: .word %s" %
                         (name, ", ".join(str(v) for v in values)))
        else:
            lines.append("%s: .space %d" % (name, 4 * size))
    lines.append("")
    return "\n".join(lines)
