"""Backward liveness dataflow over the IR CFG.

Classic iterative analysis on virtual registers::

    live_out(B) = union of live_in(S) for S in successors(B)
    live_in(B)  = use(B) | (live_out(B) - def(B))

where ``use(B)`` is the set of vregs with an upward-exposed use in B.
Used by the speculative-hoisting scheduler (safety conditions) and the
linear-scan register allocator (interval construction).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set, Tuple

from repro.lang.ir import Block, IRFunction, VReg


class LivenessInfo:
    """Per-block live-in/live-out sets for one function."""

    def __init__(self, live_in: Dict[str, Set[VReg]],
                 live_out: Dict[str, Set[VReg]]):
        self.live_in = live_in
        self.live_out = live_out


def block_use_def(block: Block) -> Tuple[Set[VReg], Set[VReg]]:
    """Upward-exposed uses and defs of one block (terminator included)."""
    uses: Set[VReg] = set()
    defs: Set[VReg] = set()
    instrs = list(block.instrs)
    if block.terminator is not None:
        instrs.append(block.terminator)
    for instr in instrs:
        for vreg in instr.uses():
            if vreg not in defs:
                uses.add(vreg)
        for vreg in instr.defs():
            defs.add(vreg)
    return uses, defs


def compute_liveness(function: IRFunction) -> LivenessInfo:
    """Iterate the backward dataflow to a fixpoint."""
    use: Dict[str, FrozenSet[VReg]] = {}
    define: Dict[str, FrozenSet[VReg]] = {}
    for block in function.blocks:
        block_uses, block_defs = block_use_def(block)
        use[block.label] = frozenset(block_uses)
        define[block.label] = frozenset(block_defs)

    live_in: Dict[str, Set[VReg]] = {b.label: set() for b in function.blocks}
    live_out: Dict[str, Set[VReg]] = {b.label: set()
                                      for b in function.blocks}
    # Iterate blocks in reverse layout order for fast convergence.
    order = list(reversed(function.blocks))
    changed = True
    while changed:
        changed = False
        for block in order:
            label = block.label
            out: Set[VReg] = set()
            for successor in block.successors():
                out |= live_in[successor]
            new_in = use[label] | (out - define[label])
            if out != live_out[label] or new_in != live_in[label]:
                live_out[label] = out
                live_in[label] = new_in
                changed = True
    return LivenessInfo(live_in, live_out)
