"""Recursive-descent parser for Mini-C.

Grammar (precedence from loosest to tightest)::

    program   := (global | function)*
    global    := 'int' IDENT ('[' NUM ']')? init? ';'
    init      := '=' (NUM | '-' NUM | '{' NUM (',' NUM)* '}')
    function  := ('int' | 'void') IDENT '(' params? ')' block
    params    := 'int' IDENT (',' 'int' IDENT)*
    block     := '{' statement* '}'
    statement := block | if | while | for | return ';'-forms | decl
               | simple ';' | ';'
    simple    := IDENT '=' expr | IDENT '[' expr ']' '=' expr | expr

    expr      := or
    or        := and ('||' and)*
    and       := bitor ('&&' bitor)*
    bitor     := bitxor ('|' bitxor)*
    bitxor    := bitand ('^' bitand)*
    bitand    := equality ('&' equality)*
    equality  := relational (('=='|'!=') relational)*
    relational:= shift (('<'|'<='|'>'|'>=') shift)*
    shift     := additive (('<<'|'>>') additive)*
    additive  := term (('+'|'-') term)*
    term      := unary (('*'|'/'|'%') unary)*
    unary     := ('-'|'!'|'~') unary | primary
    primary   := NUM | IDENT | IDENT '(' args ')' | IDENT '[' expr ']'
               | '(' expr ')'

``for (init; cond; step) body`` desugars to ``init; while (cond)
{ body; step; }`` — with the caveat that ``continue`` inside a desugared
``for`` re-runs the step (handled during desugaring by appending the
step into a wrapper the lowering understands; this parser simply
disallows ``continue`` inside ``for`` to keep semantics honest).
"""

from __future__ import annotations

from typing import List, Optional

from repro.lang import ast_nodes as ast
from repro.lang.errors import CompileError
from repro.lang.lexer import Token, tokenize

_BINARY_LEVELS = (
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
)


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.position = 0
        self.in_for = 0

    # ----- token helpers -----

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.tokens[self.position]
        if token.kind != "eof":
            self.position += 1
        return token

    def accept(self, kind: str) -> Optional[Token]:
        if self.current.kind == kind:
            return self.advance()
        return None

    def expect(self, kind: str) -> Token:
        token = self.current
        if token.kind != kind:
            raise CompileError(
                "expected %r, got %r" % (kind, token.kind), token.line)
        return self.advance()

    # ----- top level -----

    def parse_program(self) -> ast.ProgramAST:
        program = ast.ProgramAST()
        while self.current.kind != "eof":
            token = self.current
            if token.kind not in ("int", "void"):
                raise CompileError(
                    "expected declaration, got %r" % token.kind, token.line)
            returns_value = token.kind == "int"
            self.advance()
            name_token = self.expect("ident")
            if self.current.kind == "(":
                program.functions.append(
                    self._function(name_token.value, returns_value,
                                   name_token.line))
            else:
                if not returns_value:
                    raise CompileError("void variable", name_token.line)
                program.globals.append(
                    self._global(name_token.value, name_token.line))
        return program

    def _global(self, name: str, line: int) -> ast.GlobalVar:
        size = None
        if self.accept("["):
            size = self.expect("num").value
            self.expect("]")
        init: List[int] = []
        if self.accept("="):
            if self.accept("{"):
                init.append(self._literal())
                while self.accept(","):
                    init.append(self._literal())
                self.expect("}")
            else:
                init.append(self._literal())
        self.expect(";")
        if size is not None and len(init) > size:
            raise CompileError("too many initializers for %r" % name, line)
        if size is None and len(init) > 1:
            raise CompileError("scalar with list initializer", line)
        return ast.GlobalVar(name=name, size=size, init=init, line=line)

    def _literal(self) -> int:
        negative = bool(self.accept("-"))
        value = self.expect("num").value
        return -value if negative else value

    def _function(self, name: str, returns_value: bool,
                  line: int) -> ast.FunctionDef:
        self.expect("(")
        params: List[str] = []
        if not self.accept(")"):
            while True:
                self.expect("int")
                params.append(self.expect("ident").value)
                if not self.accept(","):
                    break
            self.expect(")")
        body = self._block()
        return ast.FunctionDef(name=name, params=params,
                               returns_value=returns_value, body=body,
                               line=line)

    # ----- statements -----

    def _block(self) -> ast.Block:
        open_token = self.expect("{")
        statements: List[ast.Stmt] = []
        while not self.accept("}"):
            if self.current.kind == "eof":
                raise CompileError("unterminated block", open_token.line)
            statements.append(self._statement())
        return ast.Block(line=open_token.line, statements=statements)

    def _statement(self) -> ast.Stmt:
        token = self.current
        kind = token.kind
        if kind == "{":
            return self._block()
        if kind == ";":
            self.advance()
            return ast.Block(line=token.line)
        if kind == "if":
            self.advance()
            self.expect("(")
            condition = self._expr()
            self.expect(")")
            then_body = self._statement()
            else_body = self._statement() if self.accept("else") else None
            return ast.If(line=token.line, condition=condition,
                          then_body=then_body, else_body=else_body)
        if kind == "while":
            self.advance()
            self.expect("(")
            condition = self._expr()
            self.expect(")")
            body = self._statement()
            return ast.While(line=token.line, condition=condition, body=body)
        if kind == "for":
            return self._for(token)
        if kind == "return":
            self.advance()
            value = None if self.current.kind == ";" else self._expr()
            self.expect(";")
            return ast.Return(line=token.line, value=value)
        if kind == "break":
            self.advance()
            self.expect(";")
            return ast.Break(line=token.line)
        if kind == "continue":
            if self.in_for:
                raise CompileError(
                    "continue inside 'for' is not supported "
                    "(use 'while')", token.line)
            self.advance()
            self.expect(";")
            return ast.Continue(line=token.line)
        if kind == "int":
            self.advance()
            name = self.expect("ident").value
            size = None
            if self.accept("["):
                size = self.expect("num").value
                self.expect("]")
            init = self._expr() if self.accept("=") else None
            if size is not None and init is not None:
                raise CompileError(
                    "local array initializers unsupported", token.line)
            self.expect(";")
            return ast.VarDecl(line=token.line, name=name, size=size,
                               init=init)
        statement = self._simple()
        self.expect(";")
        return statement

    def _for(self, token: Token) -> ast.Stmt:
        self.advance()
        self.expect("(")
        init = None if self.current.kind == ";" else self._simple()
        self.expect(";")
        condition = (ast.Num(line=token.line, value=1)
                     if self.current.kind == ";" else self._expr())
        self.expect(";")
        step = None if self.current.kind == ")" else self._simple()
        self.expect(")")
        self.in_for += 1
        body = self._statement()
        self.in_for -= 1
        loop_body = ast.Block(line=token.line, statements=[body])
        if step is not None:
            loop_body.statements.append(step)
        loop = ast.While(line=token.line, condition=condition,
                         body=loop_body)
        statements: List[ast.Stmt] = []
        if init is not None:
            statements.append(init)
        statements.append(loop)
        return ast.Block(line=token.line, statements=statements)

    def _simple(self) -> ast.Stmt:
        token = self.current
        if token.kind == "ident":
            next_kind = self.tokens[self.position + 1].kind
            if next_kind == "=":
                name = self.advance().value
                self.advance()
                return ast.Assign(line=token.line, name=name,
                                  value=self._expr())
            if next_kind == "[":
                # Could be a[i] = v or the expression a[i]; look ahead
                # past the balanced bracket for '='.
                save = self.position
                name = self.advance().value
                self.advance()
                index = self._expr()
                self.expect("]")
                if self.accept("="):
                    return ast.ArrayAssign(line=token.line, name=name,
                                           index=index, value=self._expr())
                self.position = save
        return ast.ExprStmt(line=token.line, expr=self._expr())

    # ----- expressions -----

    def _expr(self) -> ast.Expr:
        return self._binary(0)

    def _binary(self, level: int) -> ast.Expr:
        if level == len(_BINARY_LEVELS):
            return self._unary()
        operators = _BINARY_LEVELS[level]
        left = self._binary(level + 1)
        while self.current.kind in operators:
            operator = self.advance()
            right = self._binary(level + 1)
            left = ast.BinOp(line=operator.line, op=operator.kind,
                             left=left, right=right)
        return left

    def _unary(self) -> ast.Expr:
        token = self.current
        if token.kind in ("-", "!", "~"):
            self.advance()
            return ast.UnOp(line=token.line, op=token.kind,
                            operand=self._unary())
        return self._primary()

    def _primary(self) -> ast.Expr:
        token = self.current
        if token.kind == "num":
            self.advance()
            return ast.Num(line=token.line, value=token.value)
        if token.kind == "(":
            self.advance()
            expr = self._expr()
            self.expect(")")
            return expr
        if token.kind == "ident":
            name = self.advance().value
            if self.accept("("):
                args: List[ast.Expr] = []
                if not self.accept(")"):
                    args.append(self._expr())
                    while self.accept(","):
                        args.append(self._expr())
                    self.expect(")")
                return ast.Call(line=token.line, name=name, args=args)
            if self.accept("["):
                index = self._expr()
                self.expect("]")
                return ast.ArrayRef(line=token.line, name=name, index=index)
            return ast.Var(line=token.line, name=name)
        raise CompileError("unexpected token %r" % token.kind, token.line)


def parse(source: str) -> ast.ProgramAST:
    """Parse Mini-C *source* into an AST."""
    return _Parser(tokenize(source)).parse_program()
