"""Compiler driver: Mini-C source -> assembly -> Program.

Optimization levels:

* ``-O0``: no scheduling.  Baseline for the F3 experiment (how much
  deadness does the scheduler add?).
* ``-O2`` (default): speculative hoisting on (``max_hoist`` per branch
  arm).

Constant folding happens during lowering at every level (it is part of
the translation, not an optimization pass here).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.lang.codegen import generate_module
from repro.lang.errors import CompileError
from repro.lang.lower import lower_program
from repro.lang.optimize import optimize_module
from repro.lang.parser import parse
from repro.lang.schedule import ScheduleOptions, hoist_module

__all__ = ["CompileError", "CompilerOptions", "compile_source",
           "compile_to_program"]


@dataclass(frozen=True)
class CompilerOptions:
    """Compilation knobs used by the experiments.

    Frozen (hashable) so option sets can key caches; the canonical
    serialization for on-disk cache keys is :meth:`to_key`.
    """

    #: 0 disables the hoisting scheduler; 2 (default) enables it.
    opt_level: int = 2
    #: maximum instructions hoisted per branch arm
    max_hoist: int = 4
    #: allow the scheduler to hoist loads (off by default: a hoisted
    #: load may compute a wild address on the guarded-out path)
    hoist_loads: bool = False
    #: run the classic scalar passes (copy propagation + static DCE)
    #: before scheduling.  Off by default so the canonical experiment
    #: numbers are independent of it; the A5 experiment turns it on to
    #: show static DCE cannot remove *dynamic* deadness.
    scalar_opt: bool = False

    def to_key(self) -> str:
        """Canonical serialization for cache keying (repro.keys)."""
        from repro.keys import config_key

        return config_key(self)


def compile_source(source: str, options: CompilerOptions = None) -> str:
    """Compile Mini-C *source* to assembly text."""
    if options is None:
        options = CompilerOptions()
    module = lower_program(parse(source))
    if options.scalar_opt:
        optimize_module(module)
    if options.opt_level >= 2:
        hoist_module(module, ScheduleOptions(max_hoist=options.max_hoist,
                                             hoist_loads=options.hoist_loads))
    return generate_module(module)


def compile_to_program(source: str, options: CompilerOptions = None,
                       name: str = "") -> Program:
    """Compile Mini-C *source* all the way to an assembled Program."""
    return assemble(compile_source(source, options), name=name)
