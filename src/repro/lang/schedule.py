"""Speculative hoisting — the compiler pass the paper blames.

Out-of-order cores reward compilers for issuing work early, so
schedulers move side-effect-free instructions from a branch's successor
blocks *above* the branch (global code motion / speculation).  The cost
the paper quantifies: on every dynamic path that takes the *other* arm,
the hoisted instruction's result is never used — a dynamically dead
instance of an otherwise useful static instruction ("partially dead").

This pass performs exactly that motion on the IR CFG.  For each block B
ending in a conditional branch with arms T and F, it moves up to
``max_hoist`` leading instructions from each single-predecessor arm to
the end of B, subject to the safety conditions below, and tags each
moved instruction with ``sched`` provenance.

Safety conditions for hoisting instruction I (defining ``d``) from arm
S (other arm O):

1. I is speculation-safe (``side_effect_free``; loads only when the
   ``hoist_loads`` option is set, since a hoisted load can compute a
   wild address on the path where its guard fails);
2. every vreg I uses is defined before S (not by a non-hoisted
   instruction earlier in S's prefix);
3. ``d`` is not live-in to O (hoisting must not clobber a value the
   other path reads) and not live-in to S (no use of the old value
   above I — guaranteed for the scanned prefix, checked anyway);
4. ``d`` is not read by B's terminator (the branch must still see its
   original operands);
5. ``d`` is not defined by an earlier non-hoisted instruction in the
   scanned prefix (ordering within S must be preserved).

Note that condition 3 deliberately *permits* the canonical
partial-deadness pattern: when both arms assign the same variable,
``d`` is not live-in to either arm, hoisting the first arm's assignment
is safe (the other arm overwrites it), and every trip down the other
arm manufactures a dead instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set

from repro.lang.ir import (
    Block,
    CondBr,
    IRFunction,
    IRModule,
    Load,
    LoadGlobal,
    VReg,
)
from repro.lang.liveness import compute_liveness

#: Provenance tag attached to every hoisted instruction.
SCHED_TAG = "sched"


@dataclass
class ScheduleOptions:
    """Aggressiveness knobs for the hoisting scheduler."""

    #: maximum instructions hoisted from each branch arm
    max_hoist: int = 4
    #: also hoist (speculation-safe in this ISA, but can widen the
    #: memory footprint) loads
    hoist_loads: bool = False


@dataclass
class ScheduleStats:
    """What the pass did, for the compiler's -v output and tests."""

    branches_seen: int = 0
    instructions_hoisted: int = 0


def _hoistable(instr, options: ScheduleOptions) -> bool:
    if instr.side_effect_free:
        return True
    if options.hoist_loads and isinstance(instr, (Load, LoadGlobal)):
        return True
    return False


def hoist_function(function: IRFunction,
                   options: ScheduleOptions) -> ScheduleStats:
    """Run speculative hoisting over one function, in place."""
    stats = ScheduleStats()
    blocks = function.block_map()
    predecessors = function.predecessors()

    for block in function.blocks:
        terminator = block.terminator
        if not isinstance(terminator, CondBr):
            continue
        stats.branches_seen += 1
        branch_uses: Set[VReg] = set(terminator.uses())
        arms = (terminator.if_true, terminator.if_false)
        for arm_label, other_label in (arms, arms[::-1]):
            if arm_label == other_label:
                continue
            if len(predecessors[arm_label]) != 1:
                continue
            arm = blocks[arm_label]
            # Liveness is recomputed per arm: each hoist changes the
            # sets, and these functions are small enough that the
            # quadratic cost is irrelevant.
            liveness = compute_liveness(function)
            live_in_other = liveness.live_in[other_label]
            live_in_arm = liveness.live_in[arm_label]
            hoisted = _hoist_prefix(block, arm, branch_uses, live_in_other,
                                    live_in_arm, options)
            stats.instructions_hoisted += hoisted
    return stats


def _hoist_prefix(block: Block, arm: Block, branch_uses: Set[VReg],
                  live_in_other: Set[VReg], live_in_arm: Set[VReg],
                  options: ScheduleOptions) -> int:
    """Hoist a safe leading prefix of *arm* into *block*; return count."""
    defined_in_arm: Set[VReg] = set()
    used_by_skipped: Set[VReg] = set()
    hoisted = 0
    index = 0
    while index < len(arm.instrs) and hoisted < options.max_hoist:
        instr = arm.instrs[index]
        if not _hoistable(instr, options):
            break
        defs = instr.defs()
        if len(defs) != 1:
            break
        dst = defs[0]
        if any(vreg in defined_in_arm for vreg in instr.uses()):
            # Depends on an instruction we are not moving; later
            # instructions may still be independent, but moving them
            # past this one could reorder defs -- stop scanning.
            break
        unsafe = (dst in live_in_other or dst in live_in_arm
                  or dst in branch_uses or dst in defined_in_arm
                  # Hoisting would lift this def above a skipped
                  # instruction that reads dst's old value.
                  or dst in used_by_skipped)
        if unsafe:
            defined_in_arm.add(dst)
            used_by_skipped.update(instr.uses())
            index += 1
            continue
        # Move it: append to the predecessor, before the terminator.
        del arm.instrs[index]
        instr.provenance = SCHED_TAG
        block.instrs.append(instr)
        hoisted += 1
    return hoisted


def hoist_module(module: IRModule,
                 options: ScheduleOptions = None) -> ScheduleStats:
    """Run the scheduler over every function; return combined stats."""
    if options is None:
        options = ScheduleOptions()
    total = ScheduleStats()
    for function in module.functions:
        stats = hoist_function(function, options)
        total.branches_seen += stats.branches_seen
        total.instructions_hoisted += stats.instructions_hoisted
    return total
