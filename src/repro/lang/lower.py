"""AST -> IR lowering.

Straightforward syntax-directed translation with two niceties:

* **Constant folding for free**: expression lowering returns operands,
  and an operation whose inputs are both immediates folds to an
  immediate instead of emitting an instruction.
* **Condition lowering**: ``if``/``while`` conditions lower directly to
  conditional branches (including short-circuit ``&&``/``||`` and ``!``)
  rather than materializing 0/1 values.

Scope handling is lexical with shadowing; locals are scalar virtual
registers except declared arrays, which get frame slots.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.lang import ast_nodes as ast
from repro.lang import ir
from repro.lang.errors import CompileError

_FOLDABLE = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << (b & 31),
    ">>": lambda a, b: a >> (b & 31),
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
}

_NEGATED = {"==": "!=", "!=": "==", "<": ">=", "<=": ">", ">": "<=",
            ">=": "<"}

_COMPARISONS = ("==", "!=", "<", "<=", ">", ">=")


class _Scope:
    """Lexical scope chain mapping names to storage."""

    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.entries: Dict[str, Tuple[str, object]] = {}

    def define(self, name: str, kind: str, value: object, line: int) -> None:
        if name in self.entries:
            raise CompileError("redefinition of %r" % name, line)
        self.entries[name] = (kind, value)

    def lookup(self, name: str) -> Optional[Tuple[str, object]]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.entries:
                return scope.entries[name]
            scope = scope.parent
        return None


class _FunctionLowering:
    def __init__(self, node: ast.FunctionDef, module: ir.IRModule,
                 signatures: Dict[str, Tuple[int, bool]]):
        self.node = node
        self.module = module
        self.signatures = signatures
        self.function = ir.IRFunction(name=node.name,
                                      returns_value=node.returns_value)
        self.block = ir.Block(label=node.name)
        self.function.blocks.append(self.block)
        self.label_counter = 0
        self.next_slot = 0
        self.loop_stack: List[Tuple[str, str]] = []  # (break, continue)
        self.scope = _Scope()

    # ----- plumbing -----

    def new_label(self) -> str:
        self.label_counter += 1
        return "%s__L%d" % (self.node.name, self.label_counter)

    def start_block(self, label: str) -> None:
        self.block = ir.Block(label=label)
        self.function.blocks.append(self.block)

    def emit(self, instr: ir.IRInstr) -> None:
        if self.block.terminator is None:
            self.block.instrs.append(instr)
        # Instructions after a terminator are unreachable; drop them.

    def terminate(self, terminator: ir.Terminator) -> None:
        if self.block.terminator is None:
            self.block.terminator = terminator

    def to_vreg(self, operand: ir.Operand) -> ir.VReg:
        """Materialize *operand* into a virtual register."""
        if isinstance(operand, ir.VReg):
            return operand
        vreg = self.function.new_vreg()
        self.emit(ir.Const(dst=vreg, value=operand))
        return vreg

    # ----- entry -----

    def run(self, globals_kinds: Dict[str, str]) -> ir.IRFunction:
        function_scope = _Scope()
        for name, kind in globals_kinds.items():
            function_scope.define(name, kind, name, self.node.line)
        self.scope = _Scope(function_scope)
        if len(self.node.params) > 4:
            raise CompileError("more than 4 parameters", self.node.line)
        for index, param in enumerate(self.node.params):
            vreg = self.function.new_vreg()
            self.emit(ir.Param(dst=vreg, index=index))
            self.scope.define(param, "vreg", vreg, self.node.line)
            self.function.params.append(vreg)
        self.lower_block(self.node.body)
        # Fall off the end: implicit return.
        self.terminate(ir.Ret(value=0 if self.node.returns_value else None))
        return self.function

    # ----- statements -----

    def lower_block(self, block: ast.Block) -> None:
        saved = self.scope
        self.scope = _Scope(saved)
        for statement in block.statements:
            self.lower_stmt(statement)
        self.scope = saved

    def lower_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self.lower_block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            self._lower_decl(stmt)
        elif isinstance(stmt, ast.Assign):
            self._lower_assign(stmt)
        elif isinstance(stmt, ast.ArrayAssign):
            self._lower_array_assign(stmt)
        elif isinstance(stmt, ast.If):
            self._lower_if(stmt)
        elif isinstance(stmt, ast.While):
            self._lower_while(stmt)
        elif isinstance(stmt, ast.Return):
            self._lower_return(stmt)
        elif isinstance(stmt, ast.Break):
            if not self.loop_stack:
                raise CompileError("break outside loop", stmt.line)
            self.terminate(ir.Jump(target=self.loop_stack[-1][0]))
        elif isinstance(stmt, ast.Continue):
            if not self.loop_stack:
                raise CompileError("continue outside loop", stmt.line)
            self.terminate(ir.Jump(target=self.loop_stack[-1][1]))
        elif isinstance(stmt, ast.ExprStmt):
            self.lower_expr(stmt.expr)
        else:  # pragma: no cover - parser emits no other nodes
            raise CompileError("unhandled statement %r" % stmt, stmt.line)

    def _lower_decl(self, stmt: ast.VarDecl) -> None:
        if stmt.size is not None:
            if stmt.size <= 0:
                raise CompileError("bad array size", stmt.line)
            slot = self.next_slot
            self.next_slot += 1
            self.function.frame_slots[slot] = 4 * stmt.size
            self.scope.define(stmt.name, "larray", slot, stmt.line)
            return
        vreg = self.function.new_vreg()
        value = self.lower_expr(stmt.init) if stmt.init is not None else 0
        self.emit(ir.Move(dst=vreg, src=value))
        self.scope.define(stmt.name, "vreg", vreg, stmt.line)

    def _lower_assign(self, stmt: ast.Assign) -> None:
        entry = self.scope.lookup(stmt.name)
        if entry is None:
            raise CompileError("undefined variable %r" % stmt.name,
                               stmt.line)
        kind, storage = entry
        value = self.lower_expr(stmt.value)
        if kind == "vreg":
            self.emit(ir.Move(dst=storage, src=value))
        elif kind == "gscalar":
            self.emit(ir.StoreGlobal(src=value, name=storage))
        else:
            raise CompileError("cannot assign to array %r" % stmt.name,
                               stmt.line)

    def _address_of(self, name: str, index: ast.Expr,
                    line: int) -> Tuple[ir.VReg, int]:
        """Lower array element address; return (base vreg, byte offset)."""
        entry = self.scope.lookup(name)
        if entry is None:
            raise CompileError("undefined array %r" % name, line)
        kind, storage = entry
        if kind == "garray":
            base = self.function.new_vreg()
            self.emit(ir.GlobalAddr(dst=base, name=storage))
        elif kind == "larray":
            base = self.function.new_vreg()
            self.emit(ir.FrameAddr(dst=base, slot=storage))
        else:
            raise CompileError("%r is not an array" % name, line)
        index_op = self.lower_expr(index)
        if isinstance(index_op, int):
            return base, 4 * index_op
        scaled = self.function.new_vreg()
        self.emit(ir.BinOp(dst=scaled, op="<<", a=index_op, b=2))
        address = self.function.new_vreg()
        self.emit(ir.BinOp(dst=address, op="+", a=base, b=scaled))
        return address, 0

    def _lower_array_assign(self, stmt: ast.ArrayAssign) -> None:
        value = self.lower_expr(stmt.value)
        base, offset = self._address_of(stmt.name, stmt.index, stmt.line)
        self.emit(ir.Store(src=value, base=base, offset=offset))

    def _lower_if(self, stmt: ast.If) -> None:
        then_label = self.new_label()
        else_label = self.new_label() if stmt.else_body else None
        join_label = self.new_label()
        self.lower_condition(stmt.condition, then_label,
                             else_label or join_label)
        self.start_block(then_label)
        self.lower_stmt(stmt.then_body)
        self.terminate(ir.Jump(target=join_label))
        if stmt.else_body is not None:
            self.start_block(else_label)
            self.lower_stmt(stmt.else_body)
            self.terminate(ir.Jump(target=join_label))
        self.start_block(join_label)

    def _lower_while(self, stmt: ast.While) -> None:
        cond_label = self.new_label()
        body_label = self.new_label()
        exit_label = self.new_label()
        self.terminate(ir.Jump(target=cond_label))
        self.start_block(cond_label)
        self.lower_condition(stmt.condition, body_label, exit_label)
        self.start_block(body_label)
        self.loop_stack.append((exit_label, cond_label))
        self.lower_stmt(stmt.body)
        self.loop_stack.pop()
        self.terminate(ir.Jump(target=cond_label))
        self.start_block(exit_label)

    def _lower_return(self, stmt: ast.Return) -> None:
        if stmt.value is not None and not self.node.returns_value:
            raise CompileError("void function returns a value", stmt.line)
        value: Optional[ir.Operand] = None
        if self.node.returns_value:
            value = (self.lower_expr(stmt.value)
                     if stmt.value is not None else 0)
        self.terminate(ir.Ret(value=value))

    # ----- conditions (branch context) -----

    def lower_condition(self, expr: ast.Expr, if_true: str,
                        if_false: str) -> None:
        """Lower *expr* as control flow into the two labels."""
        if isinstance(expr, ast.BinOp) and expr.op == "&&":
            middle = self.new_label()
            self.lower_condition(expr.left, middle, if_false)
            self.start_block(middle)
            self.lower_condition(expr.right, if_true, if_false)
            return
        if isinstance(expr, ast.BinOp) and expr.op == "||":
            middle = self.new_label()
            self.lower_condition(expr.left, if_true, middle)
            self.start_block(middle)
            self.lower_condition(expr.right, if_true, if_false)
            return
        if isinstance(expr, ast.UnOp) and expr.op == "!":
            self.lower_condition(expr.operand, if_false, if_true)
            return
        if isinstance(expr, ast.BinOp) and expr.op in _COMPARISONS:
            a = self.lower_expr(expr.left)
            b = self.lower_expr(expr.right)
            if isinstance(a, int) and isinstance(b, int):
                taken = _FOLDABLE[expr.op](a, b)
                self.terminate(ir.Jump(target=if_true if taken
                                       else if_false))
                return
            self.terminate(ir.CondBr(op=expr.op, a=a, b=b, if_true=if_true,
                                     if_false=if_false))
            return
        value = self.lower_expr(expr)
        if isinstance(value, int):
            self.terminate(ir.Jump(target=if_true if value else if_false))
            return
        self.terminate(ir.CondBr(op="!=", a=value, b=0, if_true=if_true,
                                 if_false=if_false))

    # ----- expressions (value context) -----

    def lower_expr(self, expr: ast.Expr) -> ir.Operand:
        if isinstance(expr, ast.Num):
            return expr.value
        if isinstance(expr, ast.Var):
            entry = self.scope.lookup(expr.name)
            if entry is None:
                raise CompileError("undefined variable %r" % expr.name,
                                   expr.line)
            kind, storage = entry
            if kind == "vreg":
                return storage
            if kind == "gscalar":
                dst = self.function.new_vreg()
                self.emit(ir.LoadGlobal(dst=dst, name=storage))
                return dst
            raise CompileError("array %r used as value" % expr.name,
                               expr.line)
        if isinstance(expr, ast.ArrayRef):
            base, offset = self._address_of(expr.name, expr.index, expr.line)
            dst = self.function.new_vreg()
            self.emit(ir.Load(dst=dst, base=base, offset=offset))
            return dst
        if isinstance(expr, ast.Call):
            return self._lower_call(expr)
        if isinstance(expr, ast.UnOp):
            return self._lower_unop(expr)
        if isinstance(expr, ast.BinOp):
            return self._lower_binop(expr)
        raise CompileError("unhandled expression %r" % expr, expr.line)

    def _lower_call(self, expr: ast.Call) -> ir.Operand:
        if expr.name == "print":
            if len(expr.args) != 1:
                raise CompileError("print takes one argument", expr.line)
            self.emit(ir.Print(value=self.lower_expr(expr.args[0])))
            return 0
        signature = self.signatures.get(expr.name)
        if signature is None:
            raise CompileError("undefined function %r" % expr.name,
                               expr.line)
        arity, returns_value = signature
        if len(expr.args) != arity:
            raise CompileError(
                "%r expects %d arguments, got %d" % (
                    expr.name, arity, len(expr.args)), expr.line)
        args = [self.lower_expr(argument) for argument in expr.args]
        dst = self.function.new_vreg() if returns_value else None
        self.emit(ir.Call(dst=dst, name=expr.name, args=args))
        return dst if dst is not None else 0

    def _lower_unop(self, expr: ast.UnOp) -> ir.Operand:
        operand = self.lower_expr(expr.operand)
        if isinstance(operand, int):
            if expr.op == "-":
                return -operand
            if expr.op == "!":
                return int(operand == 0)
            return ~operand
        dst = self.function.new_vreg()
        self.emit(ir.UnOp(dst=dst, op=expr.op, a=operand))
        return dst

    def _lower_binop(self, expr: ast.BinOp) -> ir.Operand:
        if expr.op in ("&&", "||"):
            return self._lower_logical_value(expr)
        a = self.lower_expr(expr.left)
        b = self.lower_expr(expr.right)
        if isinstance(a, int) and isinstance(b, int):
            if expr.op in ("/", "%"):
                if b == 0:
                    raise CompileError("constant division by zero",
                                       expr.line)
                # Match machine semantics (truncate toward zero).
                quotient = abs(a) // abs(b)
                if (a < 0) != (b < 0):
                    quotient = -quotient
                if expr.op == "/":
                    return quotient
                return a - b * quotient
            return _FOLDABLE[expr.op](a, b)
        dst = self.function.new_vreg()
        self.emit(ir.BinOp(dst=dst, op=expr.op, a=a, b=b))
        return dst

    def _lower_logical_value(self, expr: ast.BinOp) -> ir.Operand:
        """Materialize a short-circuit &&/|| as a 0/1 value."""
        result = self.function.new_vreg()
        true_label = self.new_label()
        false_label = self.new_label()
        join_label = self.new_label()
        self.lower_condition(expr, true_label, false_label)
        self.start_block(true_label)
        self.emit(ir.Move(dst=result, src=1))
        self.terminate(ir.Jump(target=join_label))
        self.start_block(false_label)
        self.emit(ir.Move(dst=result, src=0))
        self.terminate(ir.Jump(target=join_label))
        self.start_block(join_label)
        return result


def lower_program(program: ast.ProgramAST) -> ir.IRModule:
    """Lower a parsed program to an IR module."""
    module = ir.IRModule()
    globals_kinds: Dict[str, str] = {}
    for declaration in program.globals:
        if declaration.name in module.globals:
            raise CompileError("redefinition of global %r" %
                               declaration.name, declaration.line)
        size = declaration.size if declaration.size is not None else 1
        module.globals[declaration.name] = (size, list(declaration.init))
        globals_kinds[declaration.name] = (
            "garray" if declaration.size is not None else "gscalar")

    signatures: Dict[str, Tuple[int, bool]] = {}
    for function in program.functions:
        if function.name in signatures:
            raise CompileError("redefinition of function %r" % function.name,
                               function.line)
        signatures[function.name] = (len(function.params),
                                     function.returns_value)
    if "main" not in signatures:
        raise CompileError("no 'main' function")
    for node in program.functions:
        if node.name in ("print",):
            raise CompileError("cannot redefine builtin %r" % node.name,
                               node.line)
        lowering = _FunctionLowering(node, module, signatures)
        module.functions.append(lowering.run(globals_kinds))
    return module
