"""Mini-C: the optimizing compiler substrate.

The paper attributes a significant share of dynamically dead
instructions to *compiler instruction scheduling* — speculative hoisting
of computations above branches, which leaves the hoisted result unused
whenever control takes the other path — and to callee-save register
save/restore code.  To reproduce that mechanism (rather than fake its
effect), this package implements a small but real optimizing compiler
for a C-like language:

* lexer/parser (:mod:`repro.lang.lexer`, :mod:`repro.lang.parser`),
* three-address IR with a per-function CFG (:mod:`repro.lang.ir`),
* AST lowering (:mod:`repro.lang.lower`),
* CFG liveness analysis (:mod:`repro.lang.liveness`),
* **speculative hoisting scheduler** (:mod:`repro.lang.schedule`) —
  the dead-instruction factory, tagging moved instructions with
  ``sched`` provenance,
* linear-scan register allocation (:mod:`repro.lang.regalloc`),
* code generation to repro assembly (:mod:`repro.lang.codegen`) with
  ``callee-save`` provenance on save/restore code.

Entry points: :func:`compile_source` (source text → assembly text) and
:func:`compile_to_program` (source text → assembled
:class:`~repro.isa.program.Program`).
"""

from repro.lang.compiler import (
    CompileError,
    CompilerOptions,
    compile_source,
    compile_to_program,
)

__all__ = [
    "CompileError",
    "CompilerOptions",
    "compile_source",
    "compile_to_program",
]
