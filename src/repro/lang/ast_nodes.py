"""Abstract syntax tree for Mini-C.

The tree is deliberately small: one scalar type (``int``), 1-D arrays,
functions, and structured control flow.  ``for`` loops are desugared to
``while`` by the parser, and ``&&``/``||`` survive to lowering (they
need short-circuit control flow).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

# --------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------


@dataclass
class Expr:
    line: int = -1


@dataclass
class Num(Expr):
    value: int = 0


@dataclass
class Var(Expr):
    name: str = ""


@dataclass
class ArrayRef(Expr):
    name: str = ""
    index: Expr = None


@dataclass
class Call(Expr):
    name: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class BinOp(Expr):
    op: str = ""
    left: Expr = None
    right: Expr = None


@dataclass
class UnOp(Expr):
    op: str = ""  # '-', '!', '~'
    operand: Expr = None


# --------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------


@dataclass
class Stmt:
    line: int = -1


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    condition: Expr = None
    then_body: Stmt = None
    else_body: Optional[Stmt] = None


@dataclass
class While(Stmt):
    condition: Expr = None
    body: Stmt = None


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class VarDecl(Stmt):
    name: str = ""
    size: Optional[int] = None  # array length, None for scalars
    init: Optional[Expr] = None


@dataclass
class Assign(Stmt):
    name: str = ""
    value: Expr = None


@dataclass
class ArrayAssign(Stmt):
    name: str = ""
    index: Expr = None
    value: Expr = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None


# --------------------------------------------------------------------
# Top level
# --------------------------------------------------------------------


@dataclass
class GlobalVar:
    name: str
    size: Optional[int]  # array length, None for scalars
    init: List[int]  # initial values (empty -> zero)
    line: int = -1


@dataclass
class FunctionDef:
    name: str
    params: List[str]
    returns_value: bool
    body: Block
    line: int = -1


@dataclass
class ProgramAST:
    globals: List[GlobalVar] = field(default_factory=list)
    functions: List[FunctionDef] = field(default_factory=list)
