"""Three-address intermediate representation with a per-function CFG.

Values live in an unbounded set of virtual registers (:class:`VReg`);
an *operand* is either a ``VReg`` or a Python ``int`` immediate.  Each
function is a list of :class:`Block` objects, each with straight-line
instructions and exactly one terminator.  Every instruction knows its
defs and uses, which the liveness analysis, the hoisting scheduler, and
the register allocator consume uniformly.

Instruction provenance (``"sched"``, ``"callee-save"``) is threaded
through to the generated assembly so the characterization experiments
can attribute dynamically dead instances to their compiler origin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union


@dataclass(frozen=True)
class VReg:
    """A virtual register."""

    id: int

    def __repr__(self) -> str:
        return "v%d" % self.id


Operand = Union[VReg, int]


def operand_vregs(*operands: Operand) -> List[VReg]:
    """The virtual registers among *operands* (immediates dropped)."""
    return [op for op in operands if isinstance(op, VReg)]


# --------------------------------------------------------------------
# Straight-line instructions
# --------------------------------------------------------------------


@dataclass
class IRInstr:
    """Base class; subclasses define ``defs()``/``uses()``."""

    provenance: Optional[str] = field(default=None, init=False)

    def defs(self) -> List[VReg]:
        return []

    def uses(self) -> List[VReg]:
        return []

    @property
    def side_effect_free(self) -> bool:
        """Safe to execute speculatively (hoistable past a branch)."""
        return False


@dataclass
class Const(IRInstr):
    dst: VReg = None
    value: int = 0

    def defs(self):
        return [self.dst]

    @property
    def side_effect_free(self):
        return True


@dataclass
class Move(IRInstr):
    dst: VReg = None
    src: Operand = 0

    def defs(self):
        return [self.dst]

    def uses(self):
        return operand_vregs(self.src)

    @property
    def side_effect_free(self):
        return True


@dataclass
class BinOp(IRInstr):
    """dst <- a OP b.

    ``op`` is one of ``+ - * / % & | ^ << >>`` or a comparison
    ``== != < <= > >=`` producing 0/1.  Division and remainder are
    total in this ISA (no faults), so every BinOp is speculation-safe.
    """

    dst: VReg = None
    op: str = ""
    a: Operand = 0
    b: Operand = 0

    def defs(self):
        return [self.dst]

    def uses(self):
        return operand_vregs(self.a, self.b)

    @property
    def side_effect_free(self):
        return True


@dataclass
class UnOp(IRInstr):
    dst: VReg = None
    op: str = ""  # '-', '!', '~'
    a: Operand = 0

    def defs(self):
        return [self.dst]

    def uses(self):
        return operand_vregs(self.a)

    @property
    def side_effect_free(self):
        return True


@dataclass
class GlobalAddr(IRInstr):
    """dst <- address of global *name* (gp-relative at codegen)."""

    dst: VReg = None
    name: str = ""

    def defs(self):
        return [self.dst]

    @property
    def side_effect_free(self):
        return True


@dataclass
class FrameAddr(IRInstr):
    """dst <- address of local-array frame slot *slot*."""

    dst: VReg = None
    slot: int = 0

    def defs(self):
        return [self.dst]

    @property
    def side_effect_free(self):
        return True


@dataclass
class Load(IRInstr):
    """dst <- mem[base + offset]."""

    dst: VReg = None
    base: VReg = None
    offset: int = 0

    def defs(self):
        return [self.dst]

    def uses(self):
        return [self.base]

    @property
    def side_effect_free(self):
        # Loads are architecturally side-effect free, but a hoisted load
        # may compute a wild address (e.g. a bounds-checked index on the
        # path where the check fails), so the scheduler treats them as
        # hoistable only under an explicit option.
        return False


@dataclass
class Store(IRInstr):
    """mem[base + offset] <- src."""

    src: Operand = 0
    base: VReg = None
    offset: int = 0

    def uses(self):
        return operand_vregs(self.src, self.base)


@dataclass
class LoadGlobal(IRInstr):
    """dst <- global scalar *name*."""

    dst: VReg = None
    name: str = ""

    def defs(self):
        return [self.dst]

    @property
    def side_effect_free(self):
        return False  # same policy as Load (uniform treatment)


@dataclass
class StoreGlobal(IRInstr):
    src: Operand = 0
    name: str = ""

    def uses(self):
        return operand_vregs(self.src)


@dataclass
class Param(IRInstr):
    """dst <- incoming argument *index* (a0-a3 at codegen)."""

    dst: VReg = None
    index: int = 0

    def defs(self):
        return [self.dst]


@dataclass
class Call(IRInstr):
    dst: Optional[VReg] = None
    name: str = ""
    args: List[Operand] = field(default_factory=list)

    def defs(self):
        return [self.dst] if self.dst is not None else []

    def uses(self):
        return operand_vregs(*self.args)


@dataclass
class Print(IRInstr):
    """Emit the integer value (syscall 1)."""

    value: Operand = 0

    def uses(self):
        return operand_vregs(self.value)


# --------------------------------------------------------------------
# Terminators
# --------------------------------------------------------------------


@dataclass
class Terminator(IRInstr):
    def successors(self) -> List[str]:
        return []


@dataclass
class Jump(Terminator):
    target: str = ""

    def successors(self):
        return [self.target]


@dataclass
class CondBr(Terminator):
    """Branch to *if_true* when ``a OP b`` holds, else *if_false*.

    ``op`` is one of ``== != < <= > >=`` (signed).
    """

    op: str = ""
    a: Operand = 0
    b: Operand = 0
    if_true: str = ""
    if_false: str = ""

    def uses(self):
        return operand_vregs(self.a, self.b)

    def successors(self):
        return [self.if_true, self.if_false]


@dataclass
class Ret(Terminator):
    value: Optional[Operand] = None

    def uses(self):
        if self.value is None:
            return []
        return operand_vregs(self.value)


# --------------------------------------------------------------------
# Containers
# --------------------------------------------------------------------


@dataclass
class Block:
    label: str
    instrs: List[IRInstr] = field(default_factory=list)
    terminator: Optional[Terminator] = None

    def successors(self) -> List[str]:
        if self.terminator is None:
            return []
        return self.terminator.successors()


@dataclass
class IRFunction:
    name: str
    params: List[VReg] = field(default_factory=list)
    blocks: List[Block] = field(default_factory=list)
    returns_value: bool = False
    #: frame slot id -> size in bytes (local arrays)
    frame_slots: Dict[int, int] = field(default_factory=dict)
    next_vreg: int = 0

    def new_vreg(self) -> VReg:
        vreg = VReg(self.next_vreg)
        self.next_vreg += 1
        return vreg

    def block_map(self) -> Dict[str, Block]:
        return {block.label: block for block in self.blocks}

    def predecessors(self) -> Dict[str, List[str]]:
        preds: Dict[str, List[str]] = {block.label: [] for block in
                                       self.blocks}
        for block in self.blocks:
            for successor in block.successors():
                preds[successor].append(block.label)
        return preds


@dataclass
class IRModule:
    functions: List[IRFunction] = field(default_factory=list)
    #: global name -> (size in words, initializer values)
    globals: Dict[str, Tuple[int, List[int]]] = field(default_factory=dict)

    def function(self, name: str) -> IRFunction:
        for function in self.functions:
            if function.name == name:
                return function
        raise KeyError(name)
