"""Compiler diagnostics."""

from __future__ import annotations


class CompileError(ValueError):
    """Raised for lexical, syntactic, or semantic errors in Mini-C."""

    def __init__(self, message: str, line: int = -1):
        if line >= 0:
            message = "line %d: %s" % (line, message)
        super().__init__(message)
        self.line = line
