"""Canonical cache keys for configuration dataclasses.

Every configuration object that participates in a cache key — compiler
options, machine configs, predictor configs — must serialize to the
*same* string whenever two instances are equal, regardless of how they
were constructed (``replace()``, keyword order, defaulting).  Ad-hoc
``repr`` is not good enough: it follows field *declaration* order,
omits nothing, and silently changes when a field is added, so two
semantically equal configs from different code versions can collide or
diverge.  :func:`config_key` is the one canonical recipe; the harness
cache (``repro.harness.cachedir``) refuses anything else.

The recipe: ``ClassName(field=value, ...)`` with fields sorted by
name, values rendered by :func:`value_key` (primitives via ``repr``,
nested dataclasses recursively, containers element-wise).  Unsupported
value types raise ``TypeError`` loudly instead of producing an
unstable key.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass

__all__ = ["config_key", "value_key"]


def value_key(value: object) -> str:
    """Canonical string for one config value (see module docstring)."""
    if is_dataclass(value) and not isinstance(value, type):
        return config_key(value)
    if isinstance(value, bool) or value is None:
        return repr(value)
    if isinstance(value, int):
        return repr(value)
    if isinstance(value, float):
        # repr() round-trips floats exactly in Python 3.
        return repr(value)
    if isinstance(value, str):
        return repr(value)
    if isinstance(value, (tuple, list)):
        return "[%s]" % ",".join(value_key(item) for item in value)
    if isinstance(value, dict):
        items = sorted((value_key(k), value_key(v))
                       for k, v in value.items())
        return "{%s}" % ",".join("%s:%s" % item for item in items)
    if isinstance(value, frozenset):
        return "{%s}" % ",".join(sorted(value_key(v) for v in value))
    raise TypeError(
        "cannot build a stable cache key from %r (type %s); add support "
        "in repro.keys.value_key or exclude the field" %
        (value, type(value).__name__))


def config_key(config: object) -> str:
    """Canonical key string for a config dataclass instance.

    Equal instances always map to the same string; any field change
    (including inside nested dataclasses) changes it.
    """
    if not is_dataclass(config) or isinstance(config, type):
        raise TypeError("config_key expects a dataclass instance, got %r"
                        % (config,))
    parts = ["%s=%s" % (f.name, value_key(getattr(config, f.name)))
             for f in sorted(fields(config), key=lambda f: f.name)]
    return "%s(%s)" % (type(config).__name__, ",".join(parts))
