"""Explore the dead-instruction predictor design space on one workload:
table size, future-path length, and confidence threshold.

Run with::

    python examples/predictor_exploration.py [workload]
"""

import sys

from repro.analysis import analyze_deadness
from repro.predictors import (
    BimodalDeadPredictor,
    PathDeadPredictor,
    compute_paths,
    evaluate_predictor,
)
from repro.workloads import get_workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "strsearch"
    workload = get_workload(name)
    _, trace = workload.run()
    analysis = analyze_deadness(trace)
    print("workload %s: %s" % (name, analysis.summary()))
    print()

    print("table size sweep (path predictor, 3 path bits):")
    paths = compute_paths(trace, analysis.statics, path_bits=3)
    for entries in (128, 512, 2048, 8192):
        predictor = PathDeadPredictor(entries=entries)
        stats = evaluate_predictor(analysis, predictor, paths)
        print("  %5d entries (%5.2f KB): accuracy %5.1f%%  "
              "coverage %5.1f%%" % (entries, predictor.storage_kb(),
                                    100 * stats.accuracy,
                                    100 * stats.coverage))

    print()
    print("future-path length sweep (2048 entries):")
    for path_bits in (0, 1, 2, 3, 4, 5):
        paths = compute_paths(trace, analysis.statics,
                              path_bits=max(path_bits, 1))
        stats = evaluate_predictor(
            analysis, PathDeadPredictor(path_bits=path_bits), paths)
        print("  %d bits: accuracy %5.1f%%  coverage %5.1f%%" %
              (path_bits, 100 * stats.accuracy, 100 * stats.coverage))

    print()
    print("baseline without any future control flow:")
    paths = compute_paths(trace, analysis.statics, path_bits=3)
    stats = evaluate_predictor(analysis, BimodalDeadPredictor(), paths)
    print("  bimodal: accuracy %5.1f%%  coverage %5.1f%%" %
          (100 * stats.accuracy, 100 * stats.coverage))


if __name__ == "__main__":
    main()
