"""Characterize one workload the way the paper's first half does:
dead fraction, static classes, compiler provenance, and locality.

Run with::

    python examples/characterize_workload.py [workload] [scale]

e.g. ``python examples/characterize_workload.py board 0.5``.
"""

import sys

from repro.analysis import (
    analyze_deadness,
    classify_statics,
    locality_stats,
)
from repro.lang import CompilerOptions
from repro.workloads import get_workload, workload_names


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "pchase"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0
    workload = get_workload(name)
    print("workload: %s -- %s" % (workload.name, workload.description))
    print("(available: %s)" % ", ".join(workload_names()))
    print()

    for opt_level in (0, 2):
        _, trace = workload.run(CompilerOptions(opt_level=opt_level),
                                scale=scale)
        analysis = analyze_deadness(trace)
        print("-O%d: %s" % (opt_level, analysis.summary()))

    _, trace = workload.run(scale=scale)
    analysis = analyze_deadness(trace)
    classification = classify_statics(analysis)
    print()
    print("static classes: %d fully dead, %d partially dead, "
          "%d never dead" % (classification.n_static_fully_dead,
                             classification.n_static_partially_dead,
                             classification.n_static_never_dead))
    print("dead instances from partially dead statics: %.1f%%"
          % (100 * classification.partial_share))
    print("provenance of dead instances:")
    for tag, count in sorted(classification.provenance.by_tag.items()):
        print("  %-12s %6d  (%.1f%%)" % (
            tag, count, 100 * classification.provenance.fraction(tag)))

    locality = locality_stats(classification)
    print()
    print("locality: %d statics produce all dead instances; "
          "top %d cover 80%%" % (
              locality.n_dead_producing_statics,
              locality.statics_for_coverage[0.8]))


if __name__ == "__main__":
    main()
