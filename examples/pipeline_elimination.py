"""Run the out-of-order timing simulator with and without
dead-instruction elimination, on both machine configurations.

Run with::

    python examples/pipeline_elimination.py [workload] [scale]
"""

import sys

from repro.analysis import analyze_deadness
from repro.pipeline import contended_config, default_config, simulate
from repro.workloads import get_workload


def show(label, base, elim):
    sb, se = base.stats, elim.stats
    speedup = se.ipc / sb.ipc - 1

    def drop(before, after):
        if before == 0:
            return "   --"
        return "%+5.1f%%" % (100 * (after / before - 1))

    print("%s:" % label)
    print("  IPC              %6.3f -> %6.3f  (%+.1f%%)" %
          (sb.ipc, se.ipc, 100 * speedup))
    print("  preg allocations %6d -> %6d  (%s)" %
          (sb.preg_allocs, se.preg_allocs,
           drop(sb.preg_allocs, se.preg_allocs)))
    print("  RF reads         %6d -> %6d  (%s)" %
          (sb.rf_reads, se.rf_reads, drop(sb.rf_reads, se.rf_reads)))
    print("  RF writes        %6d -> %6d  (%s)" %
          (sb.rf_writes, se.rf_writes, drop(sb.rf_writes, se.rf_writes)))
    print("  D$ accesses      %6d -> %6d  (%s)" %
          (sb.dcache_accesses, se.dcache_accesses,
           drop(sb.dcache_accesses, se.dcache_accesses)))
    print("  eliminated %d (replayed %d, recoveries %d)" %
          (se.eliminated, se.replayed, se.recoveries))
    print()


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "pchase"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 1.0
    workload = get_workload(name)
    _, trace = workload.run(scale=scale)
    analysis = analyze_deadness(trace)
    print("workload %s: %d dynamic instructions, %.1f%% dead" %
          (name, len(trace), 100 * analysis.dead_fraction))
    print()

    for factory in (default_config, contended_config):
        base = simulate(trace, factory(), analysis)
        elim = simulate(trace, factory(eliminate=True), analysis)
        show("%s machine" % factory().name, base, elim)


if __name__ == "__main__":
    main()
