"""Quickstart: assemble, run, and find dead instructions.

Run with::

    python examples/quickstart.py
"""

from repro.analysis import analyze_deadness
from repro.emulator import run_program
from repro.isa import assemble, disassemble

# A tiny hand-written assembly program.  The `li t1, 99` is overwritten
# before anyone reads it -- a dynamically dead instruction.
SOURCE = """
_start:
    li   t0, 0          # accumulator
    li   t1, 99         # dead: overwritten below before any read
    li   t1, 1          # loop counter
    li   t2, 6
loop:
    beq  t1, t2, done
    add  t0, t0, t1
    addi t1, t1, 1
    j    loop
done:
    move a0, t0         # print(1+2+3+4+5) == 15
    li   v0, 1
    syscall
    halt
"""


def main() -> None:
    program = assemble(SOURCE, name="quickstart")
    machine, trace = run_program(program)
    print("program output:       ", machine.output)
    print("dynamic instructions: ", len(trace))

    analysis = analyze_deadness(trace)
    print("deadness summary:     ", analysis.summary())
    print()
    print("the dead instances:")
    for i in range(len(trace)):
        if analysis.dead[i]:
            instr = trace.instruction(i)
            kind = "directly" if analysis.direct[i] else "transitively"
            print("  #%d  pc=%#06x  %-24s (%s dead)" %
                  (i, instr.pc, disassemble(instr), kind))


if __name__ == "__main__":
    main()
