"""Bring your own benchmark: write Mini-C, compile it at -O0 and -O2,
and watch the scheduler manufacture dead instructions.

Run with::

    python examples/custom_workload.py
"""

from repro.analysis import analyze_deadness, classify_statics
from repro.emulator import run_program
from repro.isa import disassemble_program
from repro.lang import CompilerOptions, compile_source, compile_to_program

SOURCE = """
int samples[12] = {4, 18, 2, 25, 7, 30, 1, 16, 9, 22, 5, 28};
int n = 12;

int score(int value, int limit) {
  int bonus;
  if (value > limit) {
    bonus = value * 3 - limit;
  } else {
    bonus = value / 2;
  }
  return bonus;
}

void main() {
  int total = 0;
  int i;
  for (i = 0; i < n; i = i + 1) {
    total = total + score(samples[i], 15);
  }
  print(total);
}
"""


def main() -> None:
    for opt_level in (0, 2):
        options = CompilerOptions(opt_level=opt_level)
        program = compile_to_program(SOURCE, options, name="custom")
        machine, trace = run_program(program)
        analysis = analyze_deadness(trace)
        classification = classify_statics(analysis)
        print("-O%d: output=%s  %s" % (opt_level, machine.output,
                                       analysis.summary()))
        sched = classification.provenance.fraction("sched")
        print("     dead instances from the scheduler: %.1f%%"
              % (100 * sched))

    print()
    print("hoisted instructions in the -O2 assembly "
          "(tagged @sched by the compiler):")
    program = compile_to_program(SOURCE, CompilerOptions(opt_level=2))
    hoisted = [instr for instr in program.instructions
               if instr.provenance == "sched"]
    print(disassemble_program(hoisted))


if __name__ == "__main__":
    main()
