#!/usr/bin/env python
"""CI smoke for the experiment service daemon (``repro-harness
serve``, docs/service.md).

Starts the daemon, then proves its contracts end to end:

1. **Concurrent clients** — two clients submit jobs at the same time
   (one experiments job, one run-table job); both must finish ``done``.
2. **Live telemetry** — ``/metrics`` is scraped *while* the jobs run
   and again after; the final exposition must lint clean and carry
   ``repro_service_*`` series that agree with the client-side counts.
3. **Byte-identity** — every experiment result fetched from the
   service must be byte-identical to the same experiment's rendered
   block in a real ``repro-harness`` CLI run sharing the cache.
4. **Load burst** — a short closed-loop burst via
   ``scripts/service_loadgen.py`` (which re-checks job/metric/history
   integrity and writes ``BENCH_service.json``).

Run from the repository root::

    PYTHONPATH=src python scripts/service_check.py
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.harness.service import ServiceClient  # noqa: E402
from repro.obs.registry import lint_exposition  # noqa: E402

SCALE = "0.3"
EXPERIMENTS = ["F1", "F3"]
TABLE = "F5"
BANNER = re.compile(r"serving experiment service on "
                    r"(http://[\d.:]+|unix://\S+) ")


def fail(message: str) -> None:
    print("FAIL: %s" % message, file=sys.stderr)
    sys.exit(1)


def script_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "src"),
         env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
    return env


def start_service(cache_dir: str):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.harness", "serve", "--port", "0",
         "--cache-dir", cache_dir],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=script_env())
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            fail("service exited during startup (code %s)"
                 % proc.poll())
        match = BANNER.search(line)
        if match:
            print("service up at %s" % match.group(1))
            return proc, match.group(1)
    proc.kill()
    fail("service did not print its endpoint within 30s")


def cli_experiment_blocks(cache_dir: str) -> dict:
    """Run the experiments through the plain CLI (same cache) and
    split stdout into per-experiment rendered blocks."""
    result = subprocess.run(
        [sys.executable, "-m", "repro.harness"] + EXPERIMENTS
        + ["--scale", SCALE, "--cache-dir", cache_dir, "--no-meta",
           "--no-history"],
        capture_output=True, text=True, env=script_env())
    if result.returncode != 0:
        fail("CLI reference run failed:\n%s" % result.stdout[-2000:])
    blocks = {}
    current = None
    for line in result.stdout.splitlines():
        match = re.match(r"== (\w+): ", line)
        if match:
            current = match.group(1)
            blocks[current] = []
        if current is not None:
            if line.startswith("[%s finished" % current):
                blocks[current] = "\n".join(blocks[current]) + "\n"
                current = None
            else:
                blocks[current].append(line)
    return blocks


def main() -> int:
    cache_dir = tempfile.mkdtemp(prefix="repro-service-ci-")
    proc, target = start_service(cache_dir)
    mid_run_expositions = []
    try:
        # -- 1: two clients submit concurrently -----------------------
        outcomes = {}

        def submit_and_wait(name: str, spec: dict) -> None:
            client = ServiceClient(target, timeout=600.0)
            job_id = client.submit(spec)
            outcomes[name] = (job_id,
                              client.wait(job_id, timeout=600.0))

        threads = [
            threading.Thread(target=submit_and_wait, args=(
                "experiments", {"kind": "experiments",
                                "experiments": EXPERIMENTS,
                                "scale": float(SCALE)})),
            threading.Thread(target=submit_and_wait, args=(
                "table", {"kind": "table", "tables": [TABLE],
                          "scale": float(SCALE)})),
        ]
        for thread in threads:
            thread.start()
        # -- 2a: scrape while the jobs run ----------------------------
        scrape_deadline = time.monotonic() + 10.0
        while any(thread.is_alive() for thread in threads) \
                and time.monotonic() < scrape_deadline:
            with urllib.request.urlopen(target + "/metrics",
                                        timeout=5) as response:
                mid_run_expositions.append(
                    response.read().decode("utf-8"))
            time.sleep(0.05)
        for thread in threads:
            thread.join(timeout=600)
        for name in ("experiments", "table"):
            if name not in outcomes:
                fail("client %r never completed" % name)
            job_id, doc = outcomes[name]
            if doc["state"] != "done":
                fail("job %s (%s) ended %s: %s" % (
                    job_id, name, doc["state"], doc.get("error")))
        print("concurrent clients: %d mid-run scrapes, both jobs done"
              % len(mid_run_expositions))

        # -- 2b: final exposition lints clean with service series -----
        client = ServiceClient(target, timeout=600.0)
        exposition = client.metrics()
        problems = lint_exposition(exposition)
        if problems:
            fail("final exposition failed lint: %s" % problems[:3])
        for series in ("repro_service_jobs_submitted_total",
                       "repro_service_jobs_total",
                       "repro_service_job_seconds",
                       "repro_service_requests_total"):
            if series not in exposition:
                fail("final exposition is missing %s" % series)
        done = sum(float(line.rsplit(None, 1)[1])
                   for line in exposition.splitlines()
                   if line.startswith("repro_service_jobs_total")
                   and 'status="done"' in line)
        if int(done) != 2:
            fail("repro_service_jobs_total{status=done} is %d, "
                 "expected 2" % int(done))
        if not any("repro_service_" in text
                   for text in mid_run_expositions):
            fail("no mid-run scrape showed repro_service_* series")
        print("telemetry: exposition lints clean, service series "
              "present mid-run and after")

        # -- 3: byte-identity vs the CLI path -------------------------
        service_text = client.result_text(outcomes["experiments"][0])
        reference = cli_experiment_blocks(cache_dir)
        for name in EXPERIMENTS:
            if name not in reference:
                fail("CLI output had no block for %s" % name)
        # The service renders each unit exactly as the CLI prints it
        # (render + blank separator), so the whole text must match.
        expected = "".join(reference[name] + "\n"
                           for name in EXPERIMENTS)
        if service_text != expected:
            fail("service result is not byte-identical to the CLI "
                 "run (service %d bytes, CLI %d bytes)"
                 % (len(service_text), len(expected)))
        print("byte-identity: %d experiment blocks identical to the "
              "CLI run" % len(EXPERIMENTS))
    finally:
        proc.send_signal(signal.SIGINT)
        try:
            proc.wait(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()

    # -- 4: load burst (starts its own daemon, rechecks integrity) ----
    result = subprocess.run(
        [sys.executable,
         os.path.join(os.path.dirname(__file__),
                      "service_loadgen.py"),
         "--clients", "4", "--jobs-total", "12", "--scale", SCALE],
        env=script_env())
    if result.returncode != 0:
        fail("load-generator burst failed")
    print("OK: service smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
