#!/usr/bin/env python
"""CI gate for the cross-process telemetry plane (ISSUE 8).

Launches a two-worker observed sweep with a live ``/metrics``
endpoint, scrapes it **while the run executes**, and then gates the
finished run:

1. the mid-run exposition must parse cleanly
   (:func:`repro.obs.registry.lint_exposition`) and — across polls —
   surface worker-labeled ``repro_kernel_pass_*`` series, proving the
   worker deltas merge into the live registry, not just the stored
   artifact;
2. the run must exit 0 and its stored ``metrics.prom`` must carry
   ``worker="..."`` series;
3. ``obs regress`` against the committed baseline
   (``results/obs-baseline.jsonl``) must pass at a generous threshold
   (CI machines are slow, not 50x slow).

Run from the repository root::

    PYTHONPATH=src python scripts/obs_scrape_check.py
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import tempfile
import time
import urllib.request

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE = os.path.join(REPO, "results", "obs-baseline.jsonl")
#: must mirror the baseline's config fingerprint (backend,
#: experiments, scale) — see repro.obs.history.fingerprint
EXPERIMENTS = ["F7", "F8"]
SCALE = "0.3"
THRESHOLD = "50"
ENDPOINT_RE = re.compile(
    r"serving /metrics on (http://[\d.]+:\d+)/metrics")


def fail(message: str) -> None:
    print("FAIL: %s" % message, file=sys.stderr)
    sys.exit(1)


def scrape(base_url: str) -> str:
    """One scrape; None when the endpoint vanished (the run finished
    between the liveness poll and the request — not a failure, the
    loop re-checks the process)."""
    try:
        with urllib.request.urlopen(base_url + "/metrics",
                                    timeout=5) as response:
            if response.status != 200:
                fail("/metrics returned %d" % response.status)
            return response.read().decode("utf-8")
    except (urllib.error.URLError, ConnectionError, OSError):
        return None


def main() -> int:
    sys.path.insert(0, os.path.join(REPO, "src"))
    from repro.obs.registry import lint_exposition

    cache = tempfile.mkdtemp(prefix="repro-obs-scrape-")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    env.pop("REPRO_BACKEND", None)  # fingerprint pins backend=python
    command = [sys.executable, "-m", "repro.harness.cli",
               *EXPERIMENTS, "--scale", SCALE, "--jobs", "2",
               "--obs", "--serve-metrics", "0", "--cache-dir", cache]
    print("launching: %s" % " ".join(command))
    process = subprocess.Popen(command, cwd=REPO, env=env,
                               stdout=subprocess.PIPE,
                               stderr=subprocess.STDOUT, text=True)

    # The endpoint line is printed (flushed) before the first
    # experiment starts, so reading lines until it appears cannot
    # deadlock on a full pipe.
    base_url = None
    head = []
    for line in process.stdout:
        head.append(line)
        match = ENDPOINT_RE.search(line)
        if match:
            base_url = match.group(1)
            break
    if base_url is None:
        process.wait()
        fail("no endpoint line in output:\n%s" % "".join(head))
    print("scraping %s while the sweep runs" % base_url)

    # Poll the live endpoint until the run finishes; every scrape must
    # lint clean, and at least one must show merged worker series.
    scrapes = 0
    saw_worker_pass = False
    while process.poll() is None:
        body = scrape(base_url)
        if body is None:  # endpoint already gone: run just finished
            break
        scrapes += 1
        problems = lint_exposition(body)
        if problems:
            process.kill()
            fail("mid-run exposition lint: %s" % "; ".join(problems))
        if re.search(r'repro_kernel_pass_\w+\{[^}]*worker="', body):
            saw_worker_pass = True
        time.sleep(0.05)
    tail = process.stdout.read()
    process.wait()
    if process.returncode != 0:
        fail("harness run exited %d:\n%s" % (process.returncode, tail))
    # /healthz must have been live too (checked post-run is fine: the
    # daemon thread dies with the process, so this ran mid-run).
    print("run finished after %d live scrape%s" %
          (scrapes, "" if scrapes == 1 else "s"))
    if scrapes == 0:
        fail("run finished before a single scrape landed "
             "(workload too small for this gate)")
    if not saw_worker_pass:
        fail("no worker-labeled repro_kernel_pass_* series appeared "
             "in %d live scrapes" % scrapes)

    # The stored exposition carries the merged worker series as well.
    runs_root = os.path.join(cache, "runs")
    stored = [os.path.join(runs_root, name, "metrics.prom")
              for name in os.listdir(runs_root)
              if name.startswith("obs-")]
    if len(stored) != 1:
        fail("expected exactly one stored obs dir, found %d"
             % len(stored))
    with open(stored[0]) as stream:
        text = stream.read()
    if lint_exposition(text):
        fail("stored metrics.prom fails lint")
    if 'worker="' not in text:
        fail("stored metrics.prom has no worker-labeled series")
    print("stored exposition clean, worker series present")

    # History must have been appended, and the regression gate must
    # pass against the committed baseline.
    history = os.path.join(cache, "obs-history", "history.jsonl")
    with open(history) as stream:
        records = [json.loads(line) for line in stream if line.strip()]
    if len(records) != 1:
        fail("expected one history record, found %d" % len(records))
    gate = subprocess.run(
        [sys.executable, "-m", "repro.harness.cli", "obs", "regress",
         "--cache-dir", cache, "--against", BASELINE,
         "--threshold", THRESHOLD],
        cwd=REPO, env=env, capture_output=True, text=True)
    print(gate.stdout, end="")
    if gate.returncode != 0:
        fail("obs regress gate failed (exit %d):\n%s%s"
             % (gate.returncode, gate.stdout, gate.stderr))
    if "baseline record" not in gate.stdout or \
            "0 baseline records" in gate.stdout:
        fail("regress gate did not compare against the committed "
             "baseline — fingerprint drift? (%r)" % gate.stdout)
    print("OK: live scrape, worker merge, history, and regression "
          "gate all passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
