#!/usr/bin/env python
"""CI gate for the declarative run-table layer.

Executes the generated-corpus grid (``G1``: 2 workloads x 2 machine
geometries) under 3 seed repetitions and checks:

1. the statistics block is present and complete — metric mean/CI
   summaries over all 12 cells, per-factor main effects, pairwise
   Cohen's d;
2. the JSON and CSV exports carry every cell with rep/seed columns;
3. **byte-identity** — the rendered output (canonical table AND stats
   tables) is identical between a cold serial run, a hot ``--jobs 2``
   run, and a run on the ``batched`` kernel backend; the exported
   documents agree after stripping wall-time fields.

Run from the repository root::

    PYTHONPATH=src python scripts/runtable_check.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile

TABLE = "G1"
SCALE = "0.3"
REPS = "3"
N_CELLS = 4 * 3  # (2 workloads x 2 machines) x 3 repetitions


def fail(message: str) -> None:
    print("FAIL: %s" % message, file=sys.stderr)
    sys.exit(1)


def run_table(cache: str, out_json: str, *extra: str) -> str:
    """One ``table run`` invocation; returns its rendered output (the
    part that must be byte-identical: everything before the wall-time
    footer line)."""
    argv = [sys.executable, "-m", "repro.harness", "table", "run",
            TABLE, "--scale", SCALE, "--reps", REPS,
            "--cache-dir", cache, "--no-meta",
            "--json", out_json] + list(extra)
    proc = subprocess.run(argv, capture_output=True, text=True)
    if proc.returncode != 0:
        fail("%r exited %d:\n%s" % (" ".join(argv), proc.returncode,
                                    proc.stderr))
    rendered = proc.stdout.split("\n[%s:" % TABLE)[0]
    if not rendered.strip():
        fail("no rendered output from %r" % " ".join(argv))
    return rendered


def scrub(value):
    """Drop wall-time fields so exports can be compared exactly."""
    if isinstance(value, dict):
        return {key: scrub(item) for key, item in value.items()
                if key != "seconds"}
    if isinstance(value, list):
        return [scrub(item) for item in value]
    return value


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="runtable-check-")
    cache = os.path.join(workdir, "cache")
    cold_json = os.path.join(workdir, "cold.json")
    hot_json = os.path.join(workdir, "hot.json")
    batched_json = os.path.join(workdir, "batched.json")

    print("== leg 1: cold cache, serial ==")
    cold = run_table(cache, cold_json, "--jobs", "1")

    for marker in ("Generated-corpus elimination grid",
                   "Metric statistics",
                   "Main effects: workload",
                   "Main effects: machine",
                   "Pairwise effects: workload",
                   "Cohen's d"):
        if marker not in cold:
            fail("stats block incomplete: %r missing from rendered "
                 "output" % marker)
    print("stats block present (summaries + effects + pairwise)")

    with open(cold_json) as stream:
        document = json.load(stream)["tables"][TABLE]
    cells = document["cells"]
    if len(cells) != N_CELLS:
        fail("expected %d exported cells, got %d" % (N_CELLS,
                                                     len(cells)))
    if sorted({cell["rep"] for cell in cells}) != [0, 1, 2]:
        fail("exported cells do not span 3 repetitions")
    if sorted({cell["seed"] for cell in cells}) != [1, 2, 3]:
        fail("exported cells do not record shifted seeds")
    stats = document["stats"]
    for metric in document["metrics"]:
        summary = stats["summaries"].get(metric)
        if not summary or summary["n"] != N_CELLS:
            fail("stats summary for %r missing or wrong n: %r"
                 % (metric, summary))
        if not (summary["ci_low"] <= summary["mean"]
                <= summary["ci_high"]):
            fail("CI for %r does not bracket its mean: %r"
                 % (metric, summary))
    if set(stats["factors"]) != {"workload", "machine"}:
        fail("factor effects missing: %r" % sorted(stats["factors"]))
    print("JSON export complete: %d cells, CIs bracket means" % N_CELLS)

    print("== leg 2: hot cache, --jobs 2 ==")
    hot = run_table(cache, hot_json, "--jobs", "2")
    if hot != cold:
        fail("rendered output differs between cold-serial and "
             "hot-parallel runs")
    print("byte-identical rendered output (cold/serial vs hot/--jobs 2)")

    print("== leg 3: batched kernel backend ==")
    batched = run_table(cache, batched_json, "--jobs", "2",
                        "--backend", "batched")
    if batched != cold:
        fail("rendered output differs between python and batched "
             "backends")
    print("byte-identical rendered output across kernel backends")

    documents = []
    for path in (cold_json, hot_json, batched_json):
        with open(path) as stream:
            documents.append(scrub(json.load(stream)))
    if not (documents[0] == documents[1] == documents[2]):
        fail("exported documents differ across legs (seconds "
             "stripped)")
    print("exported cell documents identical across all legs")

    print("== leg 4: csv export ==")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.harness", "table", "export",
         TABLE, "--scale", SCALE, "--reps", REPS, "--format", "csv",
         "--cache-dir", cache, "--no-meta"],
        capture_output=True, text=True)
    if proc.returncode != 0:
        fail("csv export exited %d:\n%s" % (proc.returncode,
                                            proc.stderr))
    lines = proc.stdout.strip().splitlines()
    if len(lines) != 1 + N_CELLS:
        fail("csv export: expected header + %d rows, got %d lines"
             % (N_CELLS, len(lines)))
    if not lines[0].startswith("workload,machine,rep,seed,"):
        fail("csv header unexpected: %r" % lines[0])
    print("csv export carries header + %d cell rows" % N_CELLS)

    print("OK: run-table stats + byte-identity legs all passed")


if __name__ == "__main__":
    main()
