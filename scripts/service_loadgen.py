#!/usr/bin/env python
"""Closed-loop load generator for the experiment service.

Starts a ``repro-harness serve`` daemon (unless ``--target`` points at
one already running), then drives it with N concurrent clients, each
in a closed loop — submit a job from a mixed pool of job types, poll
(long-poll) until it finishes, verify the result arrived, repeat —
until the requested number of jobs has completed.  This is the
Locust-style harness for the service: client concurrency stresses the
HTTP layer and the queue while the executor drains jobs through the
shared engine, so the steady state measures exactly what a deployment
would see — queueing delay dominated by cache-hit execution.

Reported (and written to ``BENCH_service.json``):

* throughput (finished jobs/s over the measurement window);
* per-job latency percentiles (p50/p90/p99), split into queue wait vs
  execution wall time as reported by the service;
* engine stage-cache hit rate under contention (from ``/stats``);
* history/metrics integrity: every finished job present in ``GET
  /jobs``, ``repro_service_jobs_total`` agreeing with the client-side
  count, zero corrupt history lines.

Run from the repository root::

    PYTHONPATH=src python scripts/service_loadgen.py
    PYTHONPATH=src python scripts/service_loadgen.py \
        --clients 8 --jobs-total 40 --scale 0.3
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.harness.service import ServiceClient, ServiceError  # noqa: E402

#: the submission mix, cycled per job index: mostly cheap analysis
#: experiments (cache-hot after the first round), some timing
#: experiments, an occasional run table — roughly a real mix of
#: interactive probes and batch sweeps
DEFAULT_MIX = [
    {"kind": "experiments", "experiments": ["F1"]},
    {"kind": "experiments", "experiments": ["F3"]},
    {"kind": "experiments", "experiments": ["F9"]},
    {"kind": "experiments", "experiments": ["F1", "F3"]},
    {"kind": "table", "tables": ["F5"], "reps": 1},
]


def fail(message: str) -> None:
    print("FAIL: %s" % message, file=sys.stderr)
    sys.exit(1)


def percentile(values, fraction: float) -> float:
    """Nearest-rank percentile (no interpolation, stdlib only)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(int(fraction * len(ordered)), len(ordered) - 1)
    return ordered[index]


def start_daemon(scale_hint: float, cache_dir: str):
    """Launch ``repro-harness serve`` and parse its endpoint banner."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [os.path.join(os.path.dirname(__file__), "..", "src"),
         env.get("PYTHONPATH", "")]).rstrip(os.pathsep)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.harness", "serve", "--port", "0",
         "--cache-dir", cache_dir],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env)
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            fail("service exited during startup (code %s)"
                 % proc.poll())
        match = re.search(r"on (http://[\d.:]+|unix://\S+) ", line)
        if match:
            return proc, match.group(1)
    proc.kill()
    fail("service did not print its endpoint within 30s")


def run_clients(target: str, clients: int, jobs_total: int,
                scale: float, timeout: float):
    """The closed loop: *clients* threads share a global job budget;
    each submits, waits, fetches the result, records latency."""
    lock = threading.Lock()
    state = {"next_index": 0, "errors": []}
    completions = []  # (latency_s, queue_s, wall_s, kind)

    def loop(worker: int) -> None:
        client = ServiceClient(target, timeout=timeout)
        while True:
            with lock:
                index = state["next_index"]
                if index >= jobs_total or state["errors"]:
                    return
                state["next_index"] = index + 1
            spec = dict(DEFAULT_MIX[index % len(DEFAULT_MIX)])
            spec["scale"] = scale
            started = time.monotonic()
            try:
                job_id = client.submit(spec)
                doc = client.wait(job_id, timeout=timeout)
                if doc["state"] != "done":
                    raise ServiceError(500, "job %s ended %s: %s" % (
                        job_id, doc["state"], doc.get("error")))
                if not client.result_text(job_id).strip():
                    raise ServiceError(500, "job %s returned an empty "
                                            "result" % job_id)
            except Exception as error:
                with lock:
                    state["errors"].append("client %d job %d: %s"
                                           % (worker, index, error))
                return
            latency = time.monotonic() - started
            with lock:
                completions.append((latency, float(doc["queue_s"]),
                                    float(doc["wall_s"]),
                                    spec["kind"]))

    threads = [threading.Thread(target=loop, args=(worker,),
                                name="loadgen-%d" % worker)
               for worker in range(clients)]
    window_start = time.monotonic()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    window = time.monotonic() - window_start
    if state["errors"]:
        fail("; ".join(state["errors"][:5]))
    return completions, window


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=6,
                        help="concurrent closed-loop clients "
                             "(default 6)")
    parser.add_argument("--jobs-total", type=int, default=30,
                        help="jobs to complete across all clients "
                             "(default 30)")
    parser.add_argument("--scale", type=float, default=0.3,
                        help="workload scale for every job "
                             "(default 0.3)")
    parser.add_argument("--warmup-jobs", type=int, default=None,
                        help="jobs submitted serially before the "
                             "measured window, to separate cold-cache "
                             "compute from steady-state service "
                             "latency (default: one per mix entry)")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="per-job client timeout (default 600)")
    parser.add_argument("--target", metavar="URL",
                        help="drive an already-running service "
                             "(http://host:port or unix:///path) "
                             "instead of starting one")
    parser.add_argument("--output", default="BENCH_service.json",
                        help="result file (default BENCH_service.json)")
    args = parser.parse_args()

    proc = None
    cache_dir = None
    if args.target:
        target = args.target
    else:
        cache_dir = tempfile.mkdtemp(prefix="repro-loadgen-")
        proc, target = start_daemon(args.scale, cache_dir)
        print("started service at %s (cache %s)" % (target, cache_dir))

    try:
        client = ServiceClient(target, timeout=args.timeout)

        # Warm-up: one serial pass over the mix populates the stage
        # cache, so the measured window reflects the service under
        # steady-state (cache-hot) load, not first-compute cost.
        warmup = args.warmup_jobs
        if warmup is None:
            warmup = len(DEFAULT_MIX)
        warm_started = time.monotonic()
        for index in range(warmup):
            spec = dict(DEFAULT_MIX[index % len(DEFAULT_MIX)])
            spec["scale"] = args.scale
            doc = client.wait(client.submit(spec),
                              timeout=args.timeout)
            if doc["state"] != "done":
                fail("warmup job ended %s: %s"
                     % (doc["state"], doc.get("error")))
        warm_seconds = time.monotonic() - warm_started
        print("warmup: %d job%s in %.1fs" % (
            warmup, "" if warmup == 1 else "s", warm_seconds))

        stats_before = client.stats()
        completions, window = run_clients(
            target, args.clients, args.jobs_total, args.scale,
            args.timeout)
        stats_after = client.stats()

        # Integrity: the service agrees with the client-side count.
        done_jobs = [doc for doc in client.jobs()
                     if doc["state"] == "done"]
        expected_done = warmup + len(completions)
        if len(done_jobs) != expected_done:
            fail("service reports %d done jobs, clients completed %d"
                 % (len(done_jobs), expected_done))
        metric_total = sum(
            float(line.rsplit(None, 1)[1])
            for line in client.metrics().splitlines()
            if line.startswith("repro_service_jobs_total")
            and 'status="done"' in line)
        if int(metric_total) != expected_done:
            fail("repro_service_jobs_total{status=done} is %d, "
                 "expected %d" % (int(metric_total), expected_done))

        latencies = [entry[0] for entry in completions]
        queue_waits = [entry[1] for entry in completions]
        walls = [entry[2] for entry in completions]
        hits_delta = (stats_after["cache"]["hits"]
                      - stats_before["cache"]["hits"])
        misses_delta = (stats_after["cache"]["misses"]
                        - stats_before["cache"]["misses"])
        lookups = hits_delta + misses_delta
        document = {
            "clients": args.clients,
            "jobs_total": len(completions),
            "scale": args.scale,
            "mix": DEFAULT_MIX,
            "warmup": {"jobs": warmup,
                       "seconds": round(warm_seconds, 3)},
            "window_s": round(window, 3),
            "throughput_jobs_per_s": round(len(completions) / window,
                                           3),
            "latency_s": {
                "p50": round(percentile(latencies, 0.50), 4),
                "p90": round(percentile(latencies, 0.90), 4),
                "p99": round(percentile(latencies, 0.99), 4),
                "max": round(max(latencies), 4),
            },
            "queue_wait_s": {
                "p50": round(percentile(queue_waits, 0.50), 4),
                "p99": round(percentile(queue_waits, 0.99), 4),
            },
            "execution_s": {
                "p50": round(percentile(walls, 0.50), 4),
                "p99": round(percentile(walls, 0.99), 4),
            },
            "cache_under_load": {
                "hits": hits_delta,
                "misses": misses_delta,
                "hit_rate": round(hits_delta / lookups, 4)
                if lookups else None,
            },
            "jobs_by_state": stats_after["jobs"],
        }
        with open(args.output, "w") as stream:
            json.dump(document, stream, indent=2, sort_keys=True)
            stream.write("\n")
        print("measured: %d jobs, %d clients, %.1fs window -> "
              "%.2f jobs/s; latency p50 %.3fs p99 %.3fs; cache hit "
              "rate %s" % (
                  len(completions), args.clients, window,
                  document["throughput_jobs_per_s"],
                  document["latency_s"]["p50"],
                  document["latency_s"]["p99"],
                  document["cache_under_load"]["hit_rate"]))
        print("wrote %s" % args.output)
    finally:
        if proc is not None:
            proc.send_signal(signal.SIGINT)
            try:
                proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                proc.kill()
    return 0


if __name__ == "__main__":
    sys.exit(main())
